"""docs/ROBUSTNESS.md is a contract, not prose.

The malformed-class reference table must list exactly the
``MalformedReason`` slugs the dissector can emit, and the fault
taxonomy table exactly the ``FAULT_KINDS`` the injector implements —
both directions, so adding an enum member or a fault kind without
documenting it (or documenting one that does not exist) fails here.
"""

import pathlib
import re

from repro.core.dissect import MalformedReason
from repro.faults import FAULT_KINDS

DOCS = pathlib.Path(__file__).resolve().parent.parent / "docs" / "ROBUSTNESS.md"

ROW = re.compile(r"^\|\s*`(?P<key>[a-z0-9-]+)`\s*\|\s*(?P<meaning>[^|]+?)\s*\|$")


def table_keys(heading: str) -> dict:
    """Parse the two-column table under ``heading`` into {key: meaning}."""
    rows = {}
    in_section = False
    for line in DOCS.read_text().splitlines():
        if line.startswith("#"):
            in_section = heading in line
            continue
        if not in_section:
            continue
        match = ROW.match(line)
        if not match:
            continue
        key = match.group("key")
        assert key not in rows, f"{key} documented twice under {heading!r}"
        rows[key] = match.group("meaning")
    return rows


def test_malformed_reason_table_matches_enum():
    documented = table_keys("Malformed-class reference")
    live = {reason.value for reason in MalformedReason}
    assert documented, "no malformed-class rows parsed from ROBUSTNESS.md"
    missing = sorted(live - set(documented))
    stale = sorted(set(documented) - live)
    assert not missing, f"MalformedReason slugs missing from docs: {missing}"
    assert not stale, f"docs list unknown malformed classes: {stale}"
    for key, meaning in documented.items():
        assert len(meaning) > 10, f"{key}: meaning cell looks empty"


def test_fault_taxonomy_table_matches_kinds():
    documented = table_keys("Fault taxonomy")
    assert documented, "no fault-kind rows parsed from ROBUSTNESS.md"
    assert tuple(documented) == FAULT_KINDS, (
        "fault table must list FAULT_KINDS exactly, in application order: "
        f"documented {tuple(documented)}, live {FAULT_KINDS}"
    )


def test_metrics_cross_references_hold():
    """ROBUSTNESS.md names two metric families; they must exist (the
    full name/type/label sync lives in test_docs_metrics_sync.py)."""
    text = DOCS.read_text()
    for name in (
        "repro_malformed_packets_total",
        "repro_pcap_corrupt_records_total",
        "repro_faults_injected_total",
    ):
        assert name in text, f"{name} no longer mentioned in ROBUSTNESS.md"
