"""Tests for the longest-prefix-match trie."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.internet.prefix_trie import PrefixTrie
from repro.net.addresses import IPv4Network, parse_ipv4


def test_empty_trie_lookup():
    trie = PrefixTrie()
    assert trie.lookup(parse_ipv4("1.2.3.4")) is None
    assert len(trie) == 0


def test_insert_and_lookup():
    trie = PrefixTrie()
    trie.insert(IPv4Network.from_cidr("10.0.0.0/8"), "ten")
    assert trie.lookup(parse_ipv4("10.200.1.1")) == "ten"
    assert trie.lookup(parse_ipv4("11.0.0.1")) is None
    assert len(trie) == 1


def test_longest_prefix_wins():
    trie = PrefixTrie()
    trie.insert(IPv4Network.from_cidr("10.0.0.0/8"), "coarse")
    trie.insert(IPv4Network.from_cidr("10.1.0.0/16"), "fine")
    trie.insert(IPv4Network.from_cidr("10.1.2.0/24"), "finest")
    assert trie.lookup(parse_ipv4("10.9.9.9")) == "coarse"
    assert trie.lookup(parse_ipv4("10.1.9.9")) == "fine"
    assert trie.lookup(parse_ipv4("10.1.2.9")) == "finest"


def test_replace_value():
    trie = PrefixTrie()
    net = IPv4Network.from_cidr("10.0.0.0/8")
    trie.insert(net, "a")
    trie.insert(net, "b")
    assert trie.lookup(parse_ipv4("10.0.0.1")) == "b"
    assert len(trie) == 1


def test_default_route():
    trie = PrefixTrie()
    trie.insert(IPv4Network.from_cidr("0.0.0.0/0"), "default")
    trie.insert(IPv4Network.from_cidr("192.168.0.0/16"), "private")
    assert trie.lookup(parse_ipv4("8.8.8.8")) == "default"
    assert trie.lookup(parse_ipv4("192.168.1.1")) == "private"


def test_host_route():
    trie = PrefixTrie()
    trie.insert(IPv4Network.from_cidr("1.2.3.4/32"), "host")
    assert trie.lookup(parse_ipv4("1.2.3.4")) == "host"
    assert trie.lookup(parse_ipv4("1.2.3.5")) is None


def test_lookup_exact():
    trie = PrefixTrie()
    trie.insert(IPv4Network.from_cidr("10.0.0.0/8"), "a")
    assert trie.lookup_exact(IPv4Network.from_cidr("10.0.0.0/8")) == "a"
    assert trie.lookup_exact(IPv4Network.from_cidr("10.0.0.0/9")) is None


def test_items_roundtrip():
    trie = PrefixTrie()
    nets = ["10.0.0.0/8", "10.128.0.0/9", "172.16.0.0/12", "0.0.0.0/0"]
    for i, cidr in enumerate(nets):
        trie.insert(IPv4Network.from_cidr(cidr), i)
    got = {str(net): value for net, value in trie.items()}
    assert got == {
        "10.0.0.0/8": 0,
        "10.128.0.0/9": 1,
        "172.16.0.0/12": 2,
        "0.0.0.0/0": 3,
    }


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2**32 - 1),
            st.integers(min_value=1, max_value=32),
        ),
        min_size=1,
        max_size=40,
    ),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_lookup_matches_linear_scan(prefixes, probe):
    trie = PrefixTrie()
    nets = []
    for address, plen in prefixes:
        net = IPv4Network(address, plen)
        trie.insert(net, str(net))
        nets.append(net)
    expected = None
    best_len = -1
    for net in nets:
        if probe in net and net.prefix_len > best_len:
            expected = str(net)
            best_len = net.prefix_len
    assert trie.lookup(probe) == expected
