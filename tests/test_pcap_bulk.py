"""Tests for the bulk pcap writer behind the generation fast lane.

:func:`repro.net.pcap.write_records` is ``simulate --gen-lane``'s
writer: it takes ``(timestamp, wire_bytes)`` pairs and flushes them in
~1 MiB chunks.  Its contract is byte-identity — the file it produces is
indistinguishable from :class:`PcapWriter` writing the same packets one
at a time, including the microsecond rounding carry, across chunk
boundaries, and for borrowed/mutable wire buffers.  The lenient reader
must also treat a bulk-written capture exactly like a per-packet one,
corruption and all.
"""

import io
import struct

from repro.faults import corrupt_pcap_bytes
from repro.net import pcap
from repro.net.ipv4 import IPProto, IPv4Header
from repro.net.packet import CapturedPacket
from repro.net.pcap import PcapReader, PcapWriter, read_pcap, write_records
from repro.net.udp import UdpHeader
from repro.util.rng import SeededRng

#: timestamps chosen to exercise the micros-rounding paths: exact
#: seconds, plain fractions, a fraction that rounds up within the
#: second, and one whose rounding carries into the next second.
EDGE_TIMESTAMPS = (0.0, 1.25, 3.1415926, 7.0000004, 8.9999996, 1e6 + 0.5)


def make_packet(ts: float, src: int = 1, payload: bytes = b"payload"):
    return CapturedPacket(
        ts, IPv4Header(src, 2, IPProto.UDP), UdpHeader(50000, 443), payload
    )


def make_packets(count: int = 50):
    rng = SeededRng(31, "pcap-bulk")
    packets = [make_packet(ts, src=9000 + i) for i, ts in enumerate(EDGE_TIMESTAMPS)]
    packets += [
        make_packet(10.0 + i * 0.123457, src=i + 1, payload=rng.randbytes(i % 97))
        for i in range(count - len(packets))
    ]
    return packets


def per_packet_bytes(packets) -> bytes:
    buffer = io.BytesIO()
    writer = PcapWriter(buffer)
    for packet in packets:
        writer.write(packet)
    return buffer.getvalue()


def test_write_records_matches_per_packet_writer(tmp_path):
    packets = make_packets()
    path = tmp_path / "bulk.pcap"
    count = write_records(path, ((p.timestamp, p.to_bytes()) for p in packets))
    assert count == len(packets)
    assert path.read_bytes() == per_packet_bytes(packets)


def test_write_records_across_chunk_flushes(tmp_path, monkeypatch):
    """Identity holds when records straddle the flush threshold."""
    monkeypatch.setattr(pcap, "_WRITE_CHUNK", 64)
    packets = make_packets(200)
    path = tmp_path / "chunked.pcap"
    write_records(path, ((p.timestamp, p.to_bytes()) for p in packets))
    assert path.read_bytes() == per_packet_bytes(packets)


def test_write_records_copies_borrowed_buffers(tmp_path):
    """A reused mutable buffer (the gen lane stamps wire bytes into one
    bytearray per template) must be copied before the next item."""
    packets = make_packets()

    def borrowed():
        scratch = bytearray()
        for packet in packets:
            scratch[:] = packet.to_bytes()
            yield packet.timestamp, scratch

    path = tmp_path / "borrowed.pcap"
    write_records(path, borrowed())
    assert path.read_bytes() == per_packet_bytes(packets)


def test_bulk_written_pcap_round_trips(tmp_path):
    packets = make_packets()
    path = tmp_path / "roundtrip.pcap"
    write_records(path, ((p.timestamp, p.to_bytes()) for p in packets))
    back = list(read_pcap(path))
    assert [p.to_bytes() for p in back] == [p.to_bytes() for p in packets]
    # timestamps agree at pcap resolution (microseconds)
    for original, reread in zip(packets, back):
        assert abs(original.timestamp - reread.timestamp) < 1e-6


def test_lenient_reader_treats_bulk_output_like_per_packet(tmp_path):
    """The lenient-corruption corpus behaves identically on a
    bulk-written capture: exact skip counts for body damage, resync
    for header damage."""
    packets = make_packets(200)
    path = tmp_path / "lenient.pcap"
    write_records(path, ((p.timestamp, p.to_bytes()) for p in packets))
    clean = path.read_bytes()
    assert clean == per_packet_bytes(packets)

    rng = SeededRng(77, "pcap-bulk-corrupt")
    damaged, corrupted = corrupt_pcap_bytes(
        clean, rng, rate=0.2, kinds=("body",)
    )
    assert corrupted > 0
    reader = PcapReader(io.BytesIO(damaged), lenient=True)
    survivors = list(reader)
    assert reader.corrupt_records == corrupted
    assert len(survivors) == len(packets) - corrupted

    # header damage on record 3: resync recovers the rest of the stream
    out = bytearray(clean)
    offset = 24
    for _ in range(3):
        caplen = struct.unpack_from("<I", out, offset + 8)[0]
        offset += 16 + caplen
    struct.pack_into("<I", out, offset + 8, 0x7FFF_FFFF)
    reader = PcapReader(io.BytesIO(bytes(out)), lenient=True)
    recovered = list(reader)
    assert [p.to_bytes() for p in recovered[-(len(packets) - 4):]] == [
        p.to_bytes() for p in packets[4:]
    ]
    assert reader.corrupt_records >= 1
