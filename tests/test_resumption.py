"""Tests for session resumption: NEW_TOKEN, tickets, 0-RTT, short headers.

Section 6 of the paper argues RETRY's round-trip penalty "could be
alleviated by the session resumption feature in QUIC"; these tests
exercise exactly that path.
"""

import pytest

from repro.util.rng import SeededRng
from repro.quic import tls
from repro.quic.connection import ClientConnection, ServerConnection
from repro.quic.crypto import DecryptError, keys_from_secret
from repro.quic.frames import CryptoFrame, NewTokenFrame, PingFrame
from repro.quic.packet import protect_short_packet, unprotect_short_packet
from repro.quic.resumption import ResumptionState, SessionCache, early_data_keys
from repro.quic.versions import QUIC_V1


def run_handshake(client, server, ip=0x0A000001, port=5555, now=100.0, rounds=8):
    pending = [client.initial_datagram()]
    for _ in range(rounds):
        if not pending:
            break
        nxt = []
        for datagram in pending:
            for response in server.handle_datagram(datagram, ip, port, now=now):
                for reply in client.handle_datagram(response.data):
                    nxt.append(reply.data)
        pending = nxt
    return client.result()


@pytest.fixture
def rng():
    return SeededRng(2024)


# -- short header protection ------------------------------------------------


def test_short_packet_roundtrip():
    keys = keys_from_secret(b"\x07" * 32)
    wire = protect_short_packet(b"\xaa" * 8, 5, [PingFrame()], keys)
    pn, frames = unprotect_short_packet(wire, 8, keys)
    assert pn == 5
    assert any(isinstance(f, PingFrame) for f in frames)


def test_short_packet_wrong_keys_rejected():
    keys = keys_from_secret(b"\x07" * 32)
    other = keys_from_secret(b"\x08" * 32)
    wire = protect_short_packet(b"\xaa" * 8, 0, [PingFrame()], keys)
    with pytest.raises(DecryptError):
        unprotect_short_packet(wire, 8, other)


def test_short_packet_dcid_on_wire():
    keys = keys_from_secret(b"\x07" * 32)
    wire = protect_short_packet(b"\xaa" * 8, 0, [PingFrame()], keys)
    assert wire[1:9] == b"\xaa" * 8
    assert wire[0] & 0x80 == 0  # short form


def test_short_packet_too_small_rejected():
    keys = keys_from_secret(b"\x07" * 32)
    with pytest.raises(Exception):
        unprotect_short_packet(b"\x40\x01\x02", 8, keys)


# -- ticket message ------------------------------------------------------


def test_new_session_ticket_roundtrip():
    nst = tls.NewSessionTicket(ticket=b"\x42" * 48, lifetime=7200, nonce=b"\x01\x02")
    parsed = tls.NewSessionTicket.parse(nst.serialize())
    assert parsed.ticket == b"\x42" * 48
    assert parsed.lifetime == 7200
    assert parsed.nonce == b"\x01\x02"


def test_new_session_ticket_rejects_other_messages():
    with pytest.raises(tls.TlsParseError):
        tls.NewSessionTicket.parse(tls.ServerHello(random=bytes(32)).serialize())


def test_client_hello_psk_identity_roundtrip():
    hello = tls.ClientHello(random=bytes(32), psk_identity=b"ticket-blob")
    parsed = tls.ClientHello.parse(hello.serialize())
    assert parsed.psk_identity == b"ticket-blob"
    plain = tls.ClientHello.parse(tls.ClientHello(random=bytes(32)).serialize())
    assert plain.psk_identity is None


# -- session cache ---------------------------------------------------------


def _state(name="a.example", token=b"t", ticket=b"s"):
    return ResumptionState(name, QUIC_V1, token, ticket)


def test_session_cache_store_lookup():
    cache = SessionCache()
    cache.store(_state())
    assert cache.lookup("a.example").address_token == b"t"
    assert cache.lookup("other.example") is None


def test_session_cache_eviction():
    cache = SessionCache(max_entries=2)
    cache.store(_state("a"))
    cache.store(_state("b"))
    cache.store(_state("c"))
    assert len(cache) == 2
    assert cache.lookup("a") is None
    assert cache.lookup("c") is not None


def test_session_cache_update_in_place():
    cache = SessionCache(max_entries=1)
    cache.store(_state("a", token=b"1"))
    cache.store(_state("a", token=b"2"))
    assert cache.lookup("a").address_token == b"2"


def test_session_cache_rejects_zero_capacity():
    with pytest.raises(ValueError):
        SessionCache(max_entries=0)


def test_early_data_keys_deterministic():
    assert early_data_keys(b"tkt") == early_data_keys(b"tkt")
    assert early_data_keys(b"tkt") != early_data_keys(b"other")
    with pytest.raises(ValueError):
        early_data_keys(b"")


# -- end-to-end resumption ------------------------------------------------


def test_first_connection_collects_session_state(rng):
    cache = SessionCache()
    server = ServerConnection(rng.child("s"))
    client = ClientConnection(rng.child("c"), server_name="x.example", session_cache=cache)
    result = run_handshake(client, server)
    assert result.completed
    assert client.address_token
    assert client.session_ticket
    assert client.handshake_confirmed
    assert cache.lookup("x.example") is not None
    assert server.stats["tokens_issued"] == 1


def test_resumption_skips_retry_round_trip(rng):
    cache = SessionCache()
    server = ServerConnection(rng.child("s"), retry_enabled=True)
    first = ClientConnection(rng.child("c1"), server_name="x.example", session_cache=cache)
    r1 = run_handshake(first, server)
    assert r1.retries_seen == 1 and r1.round_trips == 2

    second = ClientConnection(
        rng.child("c2"),
        server_name="x.example",
        resumption=cache.lookup("x.example"),
    )
    r2 = run_handshake(second, server)
    assert r2.completed
    assert r2.retries_seen == 0
    assert r2.round_trips == 1  # the RETRY penalty is gone


def test_zero_rtt_early_data_delivered(rng):
    cache = SessionCache()
    server = ServerConnection(rng.child("s"))
    first = ClientConnection(rng.child("c1"), server_name="x.example", session_cache=cache)
    run_handshake(first, server)

    second = ClientConnection(
        rng.child("c2"),
        server_name="x.example",
        resumption=cache.lookup("x.example"),
        early_data=b"GET /index.html",
    )
    result = run_handshake(second, server)
    assert result.completed and result.used_0rtt
    assert server.stats["zero_rtt_accepted"] == 1
    received = [s.get("early_data") for s in server.connections.values()]
    assert b"GET /index.html" in received


def test_early_data_requires_ticket(rng):
    client = ClientConnection(rng.child("c"), early_data=b"too early")
    assert client.early_data is None  # no ticket, no 0-RTT
    assert not client.used_0rtt


def test_stale_ticket_falls_back_to_full_handshake(rng):
    cache = SessionCache()
    server = ServerConnection(rng.child("s"))
    first = ClientConnection(rng.child("c1"), server_name="x.example", session_cache=cache)
    run_handshake(first, server)
    state = cache.lookup("x.example")
    forged = ResumptionState(
        state.server_name, state.version, state.address_token, b"\x00" * len(state.session_ticket)
    )
    second = ClientConnection(
        rng.child("c2"), server_name="x.example", resumption=forged, early_data=b"x"
    )
    result = run_handshake(second, server)
    assert result.completed  # full handshake still works
    assert server.stats["zero_rtt_accepted"] == 0  # early data rejected


def test_address_token_rejected_from_other_ip(rng):
    cache = SessionCache()
    server = ServerConnection(rng.child("s"), retry_enabled=True)
    first = ClientConnection(rng.child("c1"), server_name="x.example", session_cache=cache)
    run_handshake(first, server, ip=111)
    second = ClientConnection(
        rng.child("c2"), server_name="x.example", resumption=cache.lookup("x.example")
    )
    # token was minted for ip=111; replay from ip=222 must be dropped
    responses = server.handle_datagram(second.initial_datagram(), 222, 5555, now=100.0)
    assert responses == []


def test_server_can_disable_session_issuance(rng):
    server = ServerConnection(rng.child("s"), issue_session_state=False)
    client = ClientConnection(rng.child("c"), server_name="x.example")
    result = run_handshake(client, server)
    assert result.completed
    assert not client.session_ticket
    assert server.stats["tokens_issued"] == 0
