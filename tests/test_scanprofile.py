"""Tests for scanner behaviour profiling."""

import pytest

from repro.core.scanprofile import ScanProfiler
from repro.internet.topology import InternetModel
from repro.net.addresses import IPv4Network
from repro.net.ipv4 import IPProto, IPv4Header
from repro.net.packet import CapturedPacket
from repro.net.udp import UdpHeader
from repro.telescope.scanners import BotScannerModel, ResearchScannerModel
from repro.util.rng import SeededRng
from repro.util.timeutil import APRIL_1_2021, DAY, HOUR

TELESCOPE = IPv4Network.from_cidr("44.0.0.0/24")  # tiny, for direct tests


def probe(src, dst, ts, sport=40000):
    return CapturedPacket(
        ts, IPv4Header(src, dst, IPProto.UDP), UdpHeader(sport, 443), b""
    )


def test_untracked_sources_ignored():
    profiler = ScanProfiler([1], TELESCOPE)
    profiler.observe(probe(99, TELESCOPE.address_at(0), 0.0))
    assert profiler.profile(99) is None
    assert profiler.profiles() == []


def test_full_sweep_profile():
    profiler = ScanProfiler([1], TELESCOPE)
    for i in range(TELESCOPE.size):
        profiler.observe(probe(1, TELESCOPE.address_at(i), i * 1.0))
    profile = profiler.profile(1)
    assert profile.packet_count == TELESCOPE.size
    assert profile.coverage(TELESCOPE) == 1.0
    assert profile.sweep_count == 1
    assert profile.sweep_interval() is None


def test_periodic_sweeps_detected():
    profiler = ScanProfiler([1], TELESCOPE, sweep_gap=3600.0)
    for sweep in range(3):
        start = sweep * 6 * HOUR
        for i in range(TELESCOPE.size):
            profiler.observe(probe(1, TELESCOPE.address_at(i), start + i * 0.5))
    profile = profiler.profile(1)
    assert profile.sweep_count == 3
    assert profile.sweep_interval() == pytest.approx(6 * HOUR, rel=0.05)


def test_classify_research_vs_bot():
    profiler = ScanProfiler([1, 2], TELESCOPE)
    # source 1: full sweep at 2 pps
    for i in range(TELESCOPE.size):
        profiler.observe(probe(1, TELESCOPE.address_at(i), i * 0.5))
    # source 2: 10 probes to random addresses over 30 seconds
    for i in range(10):
        profiler.observe(probe(2, TELESCOPE.address_at((i * 37) % 256), i * 3.0, sport=50000 + i))
    research = profiler.classify(1)
    bot = profiler.classify(2)
    assert research.is_research_sweep
    assert not bot.is_research_sweep
    assert any("coverage" in reason for reason in bot.reasons)


def test_classify_unknown_source():
    profiler = ScanProfiler([1], TELESCOPE)
    assert profiler.classify(1) is None  # tracked but never seen
    assert profiler.classify(9) is None


def test_against_generated_research_traffic():
    internet = InternetModel(SeededRng(8))
    scanner = internet.research_scanners[0]
    model = ResearchScannerModel(
        scanner=scanner,
        internet=internet,
        rng=SeededRng(9),
        sweep_interval=12 * HOUR,
        sweep_duration=4 * HOUR,
        sample=1.0 / 1024,
    )
    profiler = ScanProfiler([scanner.address], internet.telescope_net, sweep_gap=2 * HOUR)
    for packet in model.packets(APRIL_1_2021, APRIL_1_2021 + DAY):
        profiler.observe(packet)
    profile = profiler.profile(scanner.address)
    assert profile.sweep_count == 2
    assert profile.sweep_interval() == pytest.approx(12 * HOUR, rel=0.1)
    # sampled sweeps: rescale coverage by the sampling weight
    sampled_coverage = profile.coverage(internet.telescope_net)
    assert sampled_coverage * model.weight == pytest.approx(2.0, rel=0.1)
    verdict = profiler.classify(
        scanner.address, min_coverage_per_sweep=0.4 / model.weight
    )
    assert verdict.is_research_sweep


def test_against_generated_bot_traffic():
    internet = InternetModel(SeededRng(10))
    model = BotScannerModel(internet=internet, rng=SeededRng(11), sessions_per_day=800)
    bots = {b.address for b in internet.bot_hosts}
    profiler = ScanProfiler(bots, internet.telescope_net)
    for packet in model.packets(APRIL_1_2021, APRIL_1_2021 + DAY / 2):
        profiler.observe(packet)
    for profile in profiler.profiles():
        verdict = profiler.classify(profile.source)
        assert not verdict.is_research_sweep
