"""Golden-file regression test for the rendered report.

The full report for a fixed scenario (seed 11, 2 h, 1/2048 research
sample) is pinned byte for byte.  Any change to classification,
sessionization, detection, correlation, or rendering shows up here as
a readable diff.  After an *intended* change, regenerate with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_report_golden.py

and review the golden diff like any other code change.
"""

import difflib
import os
from pathlib import Path

from repro.core import QuicsandPipeline
from repro.core.report import build_report
from repro.telescope import Scenario, ScenarioConfig
from repro.util.timeutil import HOUR

GOLDEN = Path(__file__).parent / "data" / "report_seed11_2h.txt"


def render_report():
    scenario = Scenario(
        ScenarioConfig(seed=11, duration=2 * HOUR, research_sample=1 / 2048)
    )
    pipeline = QuicsandPipeline(
        registry=scenario.internet.registry,
        census=scenario.internet.census,
        greynoise=scenario.internet.greynoise,
    )
    result = pipeline.process(scenario.packets())
    return build_report(result, research_weight=scenario.truth.research_weight)


def test_report_matches_golden():
    text = render_report()
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN.write_text(text)
    _assert_matches_golden(text)


def test_report_matches_golden_with_template_cache_disabled(monkeypatch):
    """The wire-template caches must not leak into the output: the same
    scenario rendered with every cache bypassed still matches the same
    golden snapshot byte for byte."""
    monkeypatch.setenv("REPRO_DISABLE_TEMPLATE_CACHE", "1")
    _assert_matches_golden(render_report())


def _assert_matches_golden(text):
    golden = GOLDEN.read_text()
    if text != golden:
        diff = "\n".join(
            difflib.unified_diff(
                golden.splitlines(),
                text.splitlines(),
                fromfile="golden",
                tofile="current",
                lineterm="",
            )
        )
        raise AssertionError(
            "report drifted from the golden snapshot "
            "(REPRO_REGEN_GOLDEN=1 regenerates after an intended change):\n"
            + diff
        )
