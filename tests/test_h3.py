"""Tests for the HTTP/3 layer: QPACK, frames, requests over 1-RTT."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import SeededRng
from repro.quic import h3
from repro.quic.connection import ClientConnection, ConnectionError_, ServerConnection


# -- QPACK -----------------------------------------------------------------


def test_static_indexed_roundtrip():
    headers = [(":method", "GET"), (":scheme", "https"), (":status", "200")]
    assert h3.decode_field_section(h3.encode_field_section(headers)) == headers


def test_name_reference_roundtrip():
    headers = [(":path", "/index.html"), (":authority", "example.org")]
    assert h3.decode_field_section(h3.encode_field_section(headers)) == headers


def test_literal_name_roundtrip():
    headers = [("x-custom-header", "some value"), ("server", "repro")]
    assert h3.decode_field_section(h3.encode_field_section(headers)) == headers


def test_mixed_section_roundtrip():
    headers = [
        (":method", "POST"),
        (":path", "/submit"),
        ("content-length", "42"),
        ("x-trace", "abc123"),
    ]
    assert h3.decode_field_section(h3.encode_field_section(headers)) == headers


def test_large_values_use_continuation_bytes():
    value = "v" * 500  # forces multi-byte prefixed integers
    headers = [("x-long", value)]
    assert h3.decode_field_section(h3.encode_field_section(headers)) == headers


def test_decode_rejects_truncated_prefix():
    with pytest.raises(h3.H3ParseError):
        h3.decode_field_section(b"\x00")


def test_decode_rejects_dynamic_reference():
    # indexed field line with T=0 (dynamic table)
    with pytest.raises(h3.H3ParseError):
        h3.decode_field_section(b"\x00\x00\x80")


def test_decode_rejects_out_of_range_index():
    with pytest.raises(h3.H3ParseError):
        h3.decode_field_section(b"\x00\x00" + bytes([0xC0 | 0x3F, 0xFF, 0x01]))


@given(
    st.lists(
        st.tuples(
            st.sampled_from(
                [":method", ":path", "x-a", "content-length", "server", "etag"]
            ),
            st.text(
                alphabet=st.characters(min_codepoint=0x20, max_codepoint=0x7E),
                max_size=40,
            ),
        ),
        max_size=10,
    )
)
def test_field_section_roundtrip_property(headers):
    assert h3.decode_field_section(h3.encode_field_section(headers)) == headers


# -- frames ------------------------------------------------------------


def test_frame_roundtrip():
    frames = h3.parse_frames(
        h3.H3Frame(h3.FRAME_DATA, b"body").serialize()
        + h3.H3Frame(h3.FRAME_GOAWAY, b"\x00").serialize()
    )
    assert [(f.frame_type, f.payload) for f in frames] == [
        (h3.FRAME_DATA, b"body"),
        (h3.FRAME_GOAWAY, b"\x00"),
    ]


def test_frame_truncated_rejected():
    wire = h3.H3Frame(h3.FRAME_DATA, b"0123456789").serialize()
    with pytest.raises(h3.H3ParseError):
        h3.parse_frames(wire[:-4])


def test_settings_roundtrip():
    frame = h3.settings_frame({h3.SETTINGS_MAX_FIELD_SECTION_SIZE: 1234})
    assert h3.parse_settings(frame) == {h3.SETTINGS_MAX_FIELD_SECTION_SIZE: 1234}
    with pytest.raises(h3.H3ParseError):
        h3.parse_settings(h3.H3Frame(h3.FRAME_DATA, b""))


# -- requests / responses -----------------------------------------------------


def test_request_roundtrip():
    request = h3.H3Request(authority="cdn.example", path="/a/b", method="GET")
    parsed = h3.H3Request.parse(request.serialize())
    assert parsed.authority == "cdn.example"
    assert parsed.path == "/a/b"
    assert parsed.method == "GET"


def test_request_missing_headers_frame_rejected():
    with pytest.raises(h3.H3ParseError):
        h3.H3Request.parse(h3.H3Frame(h3.FRAME_DATA, b"x").serialize())


def test_response_roundtrip_with_body():
    response = h3.H3Response(status=200, body=b"<html></html>")
    parsed = h3.H3Response.parse(response.serialize())
    assert parsed.status == 200
    assert parsed.body == b"<html></html>"


def test_response_404_no_body():
    parsed = h3.H3Response.parse(h3.H3Response(status=404).serialize())
    assert parsed.status == 404
    assert parsed.body == b""


# -- over a real connection ----------------------------------------------------


def _connect(rng, server):
    client = ClientConnection(rng.child("client"), server_name="web.example")
    pending = [client.initial_datagram()]
    for _ in range(8):
        if not pending:
            break
        nxt = []
        for datagram in pending:
            for response in server.handle_datagram(datagram, 1, 2, now=0.0):
                for reply in client.handle_datagram(response.data):
                    nxt.append(reply.data)
        pending = nxt
    assert client.result().completed
    return client


def test_get_over_1rtt():
    rng = SeededRng(41)
    server = ServerConnection(rng.child("server"), pages={"/": b"front", "/x": b"xx"})
    client = _connect(rng, server)
    for path, status, body in (("/", 200, b"front"), ("/x", 200, b"xx"), ("/nope", 404, b"")):
        request = client.request_datagram(path)
        for response in server.handle_datagram(request, 1, 2, now=0.0):
            client.handle_datagram(response.data)
    assert [(r.status, r.body) for r in client.http_responses] == [
        (200, b"front"),
        (200, b"xx"),
        (404, b""),
    ]
    assert server.stats["requests_served"] == 3


def test_request_before_handshake_rejected():
    rng = SeededRng(42)
    client = ClientConnection(rng.child("c"))
    with pytest.raises(ConnectionError_):
        client.request_datagram("/")


def test_garbage_1rtt_to_server_ignored():
    rng = SeededRng(43)
    server = ServerConnection(rng.child("server"))
    client = _connect(rng, server)
    garbage = bytes([0x40]) + bytes(40)
    assert server.handle_datagram(garbage, 1, 2, now=0.0) == []
    assert server.stats["requests_served"] == 0
