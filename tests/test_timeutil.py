"""Tests for time bucketing and interval arithmetic."""

import pytest

from repro.util.timeutil import (
    APRIL_1_2021,
    HOUR,
    bucket_of,
    gap_seconds,
    hour_of_day,
    iter_buckets,
    overlap_seconds,
)


def test_bucket_of():
    assert bucket_of(100.0, 0.0, 60.0) == 1
    assert bucket_of(59.999, 0.0, 60.0) == 0
    assert bucket_of(60.0, 0.0, 60.0) == 1


def test_bucket_of_rejects_zero_width():
    with pytest.raises(ValueError):
        bucket_of(1.0, 0.0, 0.0)


def test_hour_of_day_april_1():
    # April 1, 2021 starts at midnight UTC.
    assert hour_of_day(APRIL_1_2021) == 0
    assert hour_of_day(APRIL_1_2021 + 6 * HOUR) == 6
    assert hour_of_day(APRIL_1_2021 + 18 * HOUR) == 18
    assert hour_of_day(APRIL_1_2021 + 25 * HOUR) == 1


def test_iter_buckets():
    edges = list(iter_buckets(0.0, 300.0, 100.0))
    assert edges == [0.0, 100.0, 200.0]


def test_overlap_full_partial_none():
    assert overlap_seconds(0, 10, 0, 10) == 10
    assert overlap_seconds(0, 10, 5, 20) == 5
    assert overlap_seconds(0, 10, 10, 20) == 0
    assert overlap_seconds(0, 10, 15, 20) == 0


def test_gap_seconds():
    assert gap_seconds(0, 10, 15, 20) == 5
    assert gap_seconds(15, 20, 0, 10) == 5
    assert gap_seconds(0, 10, 5, 20) == 0
    assert gap_seconds(0, 10, 10, 20) == 0
