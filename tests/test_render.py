"""Tests for the plain-text rendering helpers."""

import pytest

from repro.util.render import bar_chart, cdf_points, format_table, sparkline


def test_format_table_alignment():
    out = format_table(["name", "count"], [["alpha", 10], ["b", 20000]])
    lines = out.splitlines()
    assert lines[0].startswith("name")
    assert "-" in lines[1]
    assert "20,000" in lines[3]


def test_format_table_title_and_floats():
    out = format_table(["x"], [[1.5], [0.001]], title="T")
    assert out.splitlines()[0] == "T"
    assert "1.50" in out
    assert "0.0010" in out


def test_bar_chart_scales():
    out = bar_chart(["a", "b"], [1.0, 2.0], width=10)
    lines = out.splitlines()
    assert lines[1].count("#") == 10
    assert lines[0].count("#") == 5


def test_bar_chart_zero_values():
    out = bar_chart(["a"], [0.0])
    assert "#" not in out


def test_bar_chart_length_mismatch():
    with pytest.raises(ValueError):
        bar_chart(["a"], [1.0, 2.0])


def test_sparkline():
    line = sparkline([0, 1, 2, 3])
    assert len(line) == 4
    assert line[0] == " "
    assert sparkline([]) == ""
    assert sparkline([0, 0]) == "  "


def test_cdf_points():
    pairs = [(float(i), (i + 1) / 10) for i in range(10)]
    out = cdf_points(pairs, fractions=(0.5, 1.0))
    assert "P 50" in out
    assert "9.00" in out
