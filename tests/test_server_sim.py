"""Tests for the NGINX DES: event loop, server model, clients, Table 1."""

import pytest

from repro.util.rng import SeededRng
from repro.server.benchmark import TABLE1_SETUPS, run_attack, run_table1, table1_rows
from repro.server.client import LegitimateClient, ReplayClient
from repro.server.nginx import AUTO_WORKERS, NginxConfig, NginxQuicServer
from repro.server.simulation import EventLoop


# -- event loop -----------------------------------------------------------


def test_event_loop_ordering():
    loop = EventLoop()
    order = []
    loop.schedule(2.0, lambda: order.append("b"))
    loop.schedule(1.0, lambda: order.append("a"))
    loop.schedule(3.0, lambda: order.append("c"))
    loop.run()
    assert order == ["a", "b", "c"]
    assert loop.now == 3.0


def test_event_loop_fifo_ties():
    loop = EventLoop()
    order = []
    loop.schedule_at(1.0, lambda: order.append(1))
    loop.schedule_at(1.0, lambda: order.append(2))
    loop.run()
    assert order == [1, 2]


def test_event_loop_run_until():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, lambda: fired.append(1))
    loop.schedule(5.0, lambda: fired.append(5))
    loop.run_until(2.0)
    assert fired == [1]
    assert loop.now == 2.0
    assert loop.pending == 1


def test_event_loop_rejects_past():
    loop = EventLoop(start=10.0)
    with pytest.raises(ValueError):
        loop.schedule_at(5.0, lambda: None)


def test_event_loop_periodic():
    loop = EventLoop()
    ticks = []
    loop.schedule_every(1.0, lambda: ticks.append(loop.now), until=5.0)
    loop.run()
    assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]
    with pytest.raises(ValueError):
        loop.schedule_every(0, lambda: None)


# -- server model -----------------------------------------------------------


def test_low_rate_all_served():
    server = NginxQuicServer(NginxConfig(workers=4))
    for i in range(100):
        assert server.handle_initial(i * 0.1, i) == 4
    assert server.stats.handshakes_served == 100
    assert server.stats.responses_sent == 400


def test_table_fills_and_drops():
    config = NginxConfig(workers=1, connections_per_worker=10)
    server = NginxQuicServer(config)
    served = sum(
        1 for i in range(20) if server.handle_initial(i * 0.001, 0) > 0
    )
    assert served == 10
    assert server.stats.dropped_table_full == 10
    assert server.open_states == 10


def test_cleanup_sweep_frees_slots():
    config = NginxConfig(workers=1, connections_per_worker=10, cleanup_interval=60, min_idle=10)
    server = NginxQuicServer(config)
    for i in range(10):
        server.handle_initial(float(i), 0)
    assert server.handle_initial(11.0, 0) == 0  # table full
    # after the 60 s sweep the early states (idle > 10 s) are gone
    assert server.handle_initial(61.0, 0) > 0


def test_completed_handshake_releases_slot():
    config = NginxConfig(workers=1, connections_per_worker=1)
    server = NginxQuicServer(config)
    assert server.handle_initial(0.0, 0) > 0
    assert server.handle_initial(0.1, 0) == 0
    server.complete_handshake(0.2, 0)
    assert server.handle_initial(0.3, 0) > 0


def test_retry_mode_stateless():
    server = NginxQuicServer(NginxConfig(workers=1, connections_per_worker=5, retry_enabled=True))
    for i in range(100):
        assert server.handle_initial(i * 0.001, i) == 1
    assert server.open_states == 0
    assert server.stats.retries_sent == 100


def test_retry_mode_token_earns_handshake():
    server = NginxQuicServer(NginxConfig(workers=1, retry_enabled=True))
    assert server.handle_initial(0.0, 7) == 1  # retry
    assert server.handle_initial(0.1, 7, has_valid_token=True) == 4
    assert server.stats.handshakes_served == 1


def test_cpu_backlog_drops():
    config = NginxConfig(workers=1, crypto_cost=0.1, max_cpu_backlog=0.5, connections_per_worker=10**6)
    server = NginxQuicServer(config)
    served = sum(1 for i in range(100) if server.handle_initial(i * 0.001, 0) > 0)
    assert served < 100
    assert server.stats.dropped_cpu > 0


def test_would_serve_probe():
    config = NginxConfig(workers=1, connections_per_worker=1)
    server = NginxQuicServer(config)
    assert server.would_serve(0.0, 0)
    server.handle_initial(0.0, 0)
    assert not server.would_serve(0.1, 0)


def test_auto_config():
    config = NginxConfig.auto()
    assert config.workers == AUTO_WORKERS
    assert config.table_capacity == AUTO_WORKERS * 1024


# -- clients ------------------------------------------------------------


def test_replay_client_rate_and_order():
    replay = ReplayClient(SeededRng(1), recorded_flows=100)
    initials = list(replay.replay(10.0, 50))
    assert len(initials) == 50
    assert initials[1].timestamp - initials[0].timestamp == pytest.approx(0.1)
    with pytest.raises(ValueError):
        list(replay.replay(0, 10))
    with pytest.raises(ValueError):
        ReplayClient(SeededRng(1), recorded_flows=0)


def test_legit_client_retry_pays_extra_rtt():
    server = NginxQuicServer(NginxConfig(workers=4, retry_enabled=True))
    outcome = LegitimateClient(SeededRng(2)).probe(server, 0.0)
    assert outcome.served
    assert outcome.round_trips == 2


def test_legit_client_no_retry_single_rtt():
    server = NginxQuicServer(NginxConfig(workers=4))
    outcome = LegitimateClient(SeededRng(2)).probe(server, 0.0)
    assert outcome.served
    assert outcome.round_trips == 1


# -- table 1 ------------------------------------------------------------


def test_run_attack_low_volume_full_availability():
    server = NginxQuicServer(NginxConfig(workers=4))
    row = run_attack(server, rate_pps=10, total_requests=3001)
    assert row.availability == 1.0
    assert row.server_responses >= 4 * 3001
    assert not row.extra_rtt


def test_run_attack_4workers_collapse_at_1000pps():
    server = NginxQuicServer(NginxConfig(workers=4))
    row = run_attack(server, rate_pps=1000, total_requests=300_001)
    assert 0.05 < row.availability < 0.10  # paper: 7%
    assert row.legit_availability < 0.3


def test_run_attack_retry_keeps_service_up():
    server = NginxQuicServer(NginxConfig(workers=4, retry_enabled=True))
    row = run_attack(server, rate_pps=10_000, total_requests=100_000)
    assert row.availability == 1.0
    assert row.legit_availability == 1.0
    assert row.extra_rtt


def test_table1_shape():
    rows = run_table1(scale=1.0)
    assert len(rows) == len(TABLE1_SETUPS)
    by_key = {(r.volume_pps, r.retry, r.workers): r for r in rows}
    # paper: 100%, 68%, 7%, 100%, 26%, 26%, then retry rows all 100%
    assert by_key[(10, False, 4)].availability == 1.0
    assert 0.6 < by_key[(100, False, 4)].availability < 0.8
    assert by_key[(1_000, False, 4)].availability < 0.1
    assert by_key[(1_000, False, AUTO_WORKERS)].availability == 1.0
    assert 0.2 < by_key[(10_000, False, AUTO_WORKERS)].availability < 0.35
    assert 0.2 < by_key[(100_000, False, AUTO_WORKERS)].availability < 0.35
    for volume in (1_000, 10_000, 100_000):
        assert by_key[(volume, True, 4)].availability == 1.0
        assert by_key[(volume, True, 4)].legit_availability == 1.0


def test_table1_rows_renderable():
    headers, table = table1_rows(run_table1(scale=0.01))
    assert len(headers) == 8
    assert len(table) == len(TABLE1_SETUPS)
