"""Tests for packet protection, coalescing and Initial padding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quic import crypto
from repro.quic.crypto import DecryptError, derive_initial_keys
from repro.quic.frames import CryptoFrame, PaddingFrame, PingFrame
from repro.quic.header import HeaderParseError, LongHeader, PacketType
from repro.quic.packet import (
    MIN_INITIAL_DATAGRAM,
    PlainPacket,
    build_datagram,
    protect_packet,
    split_datagram,
    unprotect_initial,
)
from repro.quic.versions import QUIC_V1

DCID = b"\x83\x94\xc8\xf0\x3e\x51\x57\x08"
SCID = b"\x11" * 8
CLIENT_KEYS, SERVER_KEYS = derive_initial_keys(QUIC_V1, DCID)


def _initial(frames, pn=0, token=b""):
    return PlainPacket(
        header=LongHeader(
            packet_type=PacketType.INITIAL,
            version=QUIC_V1.value,
            dcid=DCID,
            scid=SCID,
            token=token,
        ),
        packet_number=pn,
        frames=frames,
    )


def test_protect_unprotect_roundtrip():
    plain = _initial([CryptoFrame(0, b"client hello bytes")], pn=3)
    wire = protect_packet(plain, CLIENT_KEYS)
    view = split_datagram(wire)[0]
    pn, frames = unprotect_initial(wire, view, CLIENT_KEYS)
    assert pn == 3
    assert isinstance(frames[0], CryptoFrame)
    assert frames[0].data == b"client hello bytes"


def test_header_protection_hides_pn_bits():
    plain = _initial([CryptoFrame(0, b"x" * 50)], pn=0)
    wire = protect_packet(plain, CLIENT_KEYS)
    # The two low bits of the protected first byte should not reliably
    # equal pn_len-1=0 — flipping keys must break decryption anyway:
    other_keys, _ = derive_initial_keys(QUIC_V1, b"\x00" * 8)
    view = split_datagram(wire)[0]
    with pytest.raises(DecryptError):
        unprotect_initial(wire, view, other_keys)


def test_packet_type_readable_without_keys():
    wire = protect_packet(_initial([PingFrame()]), CLIENT_KEYS)
    view = split_datagram(wire)[0]
    assert view.packet_type is PacketType.INITIAL
    assert view.dcid == DCID
    assert view.scid == SCID


def test_tiny_payload_padded_for_sample():
    wire = protect_packet(_initial([PingFrame()]), CLIENT_KEYS)
    view = split_datagram(wire)[0]
    pn, frames = unprotect_initial(wire, view, CLIENT_KEYS)
    assert any(isinstance(f, PingFrame) for f in frames)


def test_build_datagram_pads_initial_to_1200():
    wire = build_datagram(
        [(_initial([CryptoFrame(0, b"small")]), CLIENT_KEYS)],
        pad_to=MIN_INITIAL_DATAGRAM,
    )
    assert len(wire) == MIN_INITIAL_DATAGRAM
    view = split_datagram(wire)[0]
    pn, frames = unprotect_initial(wire, view, CLIENT_KEYS)
    assert any(isinstance(f, PaddingFrame) for f in frames)
    assert any(isinstance(f, CryptoFrame) for f in frames)


def test_build_datagram_does_not_pad_large_enough():
    wire = build_datagram(
        [(_initial([CryptoFrame(0, b"z" * 1500)]), CLIENT_KEYS)],
        pad_to=MIN_INITIAL_DATAGRAM,
    )
    assert len(wire) > MIN_INITIAL_DATAGRAM


def test_build_datagram_empty_rejected():
    with pytest.raises(ValueError):
        build_datagram([])


def test_coalesced_datagram_split():
    handshake = PlainPacket(
        header=LongHeader(
            packet_type=PacketType.HANDSHAKE,
            version=QUIC_V1.value,
            dcid=b"",
            scid=SCID,
        ),
        packet_number=0,
        frames=[CryptoFrame(0, b"handshake data")],
    )
    wire = build_datagram(
        [(_initial([CryptoFrame(0, b"sh")]), SERVER_KEYS), (handshake, SERVER_KEYS)]
    )
    views = split_datagram(wire)
    assert [v.packet_type for v in views] == [PacketType.INITIAL, PacketType.HANDSHAKE]
    assert views[0].end == views[1].start
    # Each packet decrypts independently.
    pn0, _ = unprotect_initial(wire, views[0], SERVER_KEYS)
    pn1, frames1 = unprotect_initial(wire, views[1], SERVER_KEYS)
    assert frames1[0].data == b"handshake data"


def test_split_rejects_garbage_tail():
    wire = protect_packet(_initial([CryptoFrame(0, b"ok")]), CLIENT_KEYS)
    with pytest.raises(HeaderParseError):
        split_datagram(wire + b"\x00\x01\x02")


def test_aad_binds_header_tamper_detected():
    wire = bytearray(protect_packet(_initial([CryptoFrame(0, b"ok" * 30)]), CLIENT_KEYS))
    wire[1] ^= 0xFF  # flip a version byte
    views = None
    try:
        views = split_datagram(bytes(wire))
    except HeaderParseError:
        return  # also acceptable: header no longer parses
    with pytest.raises((DecryptError, HeaderParseError, ValueError)):
        unprotect_initial(bytes(wire), views[0], CLIENT_KEYS)


def test_initial_with_token_roundtrip():
    plain = _initial([CryptoFrame(0, b"again")], token=b"retry-token-xyz")
    wire = protect_packet(plain, CLIENT_KEYS)
    view = split_datagram(wire)[0]
    assert view.token == b"retry-token-xyz"
    _pn, frames = unprotect_initial(wire, view, CLIENT_KEYS)
    assert frames[0].data == b"again"


@settings(max_examples=25)
@given(st.binary(min_size=0, max_size=600), st.integers(min_value=0, max_value=1000))
def test_roundtrip_property(payload, pn):
    plain = _initial([CryptoFrame(0, payload)], pn=pn)
    wire = protect_packet(plain, CLIENT_KEYS)
    view = split_datagram(wire)[0]
    got_pn, frames = unprotect_initial(wire, view, CLIENT_KEYS, largest_pn=pn - 1)
    assert got_pn == pn
    crypto_frames = [f for f in frames if isinstance(f, CryptoFrame)]
    assert crypto_frames[0].data == payload
