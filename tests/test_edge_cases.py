"""Edge-case coverage across substrates."""

import pytest

from repro.net.addresses import parse_ipv4
from repro.net.ipv4 import IPv4Header
from repro.net.udp import UdpHeader
from repro.quic.crypto import keys_from_secret
from repro.quic.frames import AckFrame, FrameType, PingFrame, parse_frames
from repro.quic.packet import (
    CoalescedDatagram,
    protect_short_packet,
    unprotect_short_packet,
)
from repro.telescope.scanners import TcpScannerModel
from repro.util.rng import SeededRng
from repro.util.stats import Summary, summarize
from repro.util.varint import encode_varint


# -- net edge cases ------------------------------------------------------


def test_ipv4_with_options_parses():
    """IHL > 5 (options present) must skip the options correctly."""
    base = IPv4Header(parse_ipv4("1.2.3.4"), parse_ipv4("5.6.7.8"), 17)
    wire = bytearray(base.pack(4) + b"PAYL")
    # grow header by 4 option bytes: IHL 5 -> 6, total length += 4
    wire[0] = (4 << 4) | 6
    total = int.from_bytes(wire[2:4], "big") + 4
    wire[2:4] = total.to_bytes(2, "big")
    wire[20:20] = b"\x01\x01\x01\x00"  # NOP options
    header, payload = IPv4Header.parse(bytes(wire))
    assert header.src == parse_ipv4("1.2.3.4")
    assert payload == b"PAYL"


def test_ipv4_total_length_caps_payload():
    header = IPv4Header(1, 2, 17)
    wire = header.pack(4) + b"ABCDEXTRA"  # trailing garbage beyond total_length
    _parsed, payload = IPv4Header.parse(wire)
    assert payload == b"ABCD"


def test_udp_zero_checksum_becomes_all_ones():
    # craft a payload whose checksum would be 0 is hard; instead verify
    # the field is never emitted as zero across many payloads
    for i in range(50):
        wire = UdpHeader(443, 1000 + i).pack(bytes([i]) * i, 1, 2)
        assert int.from_bytes(wire[6:8], "big") != 0


# -- frames edge cases ------------------------------------------------------


def test_ack_ecn_frame_parses():
    ack = AckFrame(largest_acked=9, ack_delay=1, first_range=2).serialize()
    ecn = bytes([FrameType.ACK_ECN]) + ack[1:] + b"".join(
        encode_varint(v) for v in (1, 2, 3)
    )
    frames = parse_frames(ecn)
    assert frames[0].largest_acked == 9


def test_ack_with_multiple_ranges_parses():
    wire = (
        bytes([FrameType.ACK])
        + encode_varint(100)
        + encode_varint(0)
        + encode_varint(2)   # two extra ranges
        + encode_varint(5)
        + encode_varint(1)
        + encode_varint(3)
        + encode_varint(2)
        + encode_varint(4)
    )
    frames = parse_frames(wire)
    assert frames[0].largest_acked == 100


def test_stream_frame_without_length_consumes_rest():
    wire = bytes([0x08 | 0x04]) + encode_varint(4) + encode_varint(0) + b"tail-data"
    frames = parse_frames(wire)
    assert frames[0].data == b"tail-data"


# -- short header key phase ---------------------------------------------------


def test_short_packet_key_phase_bit_roundtrip():
    keys = keys_from_secret(b"\x09" * 32)
    wire = protect_short_packet(b"\xcc" * 8, 3, [PingFrame()], keys, key_phase=True)
    pn, frames = unprotect_short_packet(wire, 8, keys)
    assert pn == 3
    assert any(isinstance(f, PingFrame) for f in frames)


# -- coalesced datagram holder ---------------------------------------------


def test_coalesced_datagram_len():
    datagram = CoalescedDatagram(raw=b"\x00" * 120, packets=[])
    assert len(datagram) == 120


# -- stats ------------------------------------------------------------


def test_summary_str():
    text = str(summarize([1, 2, 3]))
    assert "med=2.00" in text
    assert "n=3" in text


def test_summary_is_frozen():
    summary = summarize([1.0])
    with pytest.raises(Exception):
        summary.count = 5


# -- tcp scanner model ---------------------------------------------------


def test_tcp_scanner_emits_syn_probes():
    from repro.internet.topology import InternetModel
    from repro.net.tcp import TcpFlags
    from repro.util.timeutil import APRIL_1_2021, DAY

    internet = InternetModel(SeededRng(15))
    model = TcpScannerModel(internet=internet, rng=SeededRng(16), sessions_per_day=2000)
    packets = list(model.packets(APRIL_1_2021, APRIL_1_2021 + DAY / 4))
    assert packets
    bots = {b.address for b in internet.bot_hosts}
    ports = set()
    for packet in packets:
        assert packet.is_tcp
        assert packet.transport.flags == TcpFlags.SYN
        assert packet.src in bots
        assert packet.dst in internet.telescope_net
        ports.add(packet.dst_port)
    assert 23 in ports or 2323 in ports  # the Mirai signature ports
    times = [p.timestamp for p in packets]
    assert times == sorted(times)
