"""Property tests for the sketch structures (repro.stream.sketch).

Seeded workloads assert the published error bounds, not just behavior:
count-min never undercounts and respects the epsilon*N bound at the
documented failure probability, space-saving recalls every guaranteed
heavy hitter and its lower bound never exceeds truth, HyperLogLog
lands within 3 sigma of the 1.04/sqrt(m) standard error, and all
three merge deterministically (associative/commutative) across the
source-sharded splits the parallel pipeline produces.
"""

import math
import pickle

import pytest

from repro.stream.sketch import (
    CountMinSketch,
    HyperLogLog,
    SketchTier,
    SpaceSaving,
    mix64,
)
from repro.util.rng import SeededRng


def zipf_workload(seed, keys=2000, updates=30_000):
    """A seeded heavy-tailed stream of (key, count) hits — the regime
    sketches are built for: few heavy keys, a long light tail."""
    rng = SeededRng(seed, "sketch-workload")
    truth: dict = {}
    hits = []
    for _ in range(updates):
        # pareto-ish rank draw: low ranks (heavy keys) dominate
        rank = int(rng.random() ** 3 * keys)
        key = mix64(rank) & 0xFFFFFFFF  # spread keys over the hash space
        hits.append(key)
        truth[key] = truth.get(key, 0) + 1
    return hits, truth


def shard(items, workers):
    """The parallel pipeline's split rule: hash the key, mod workers —
    shards see disjoint key sets."""
    shards = [[] for _ in range(workers)]
    for key in items:
        shards[mix64(key) % workers].append(key)
    return shards


# -- hashing ---------------------------------------------------------------


def test_mix64_is_deterministic_and_spreads():
    assert mix64(0) == mix64(0)
    values = {mix64(key) for key in range(10_000)}
    assert len(values) == 10_000  # bijective mix: no collisions on ints
    assert all(0 <= value < 2**64 for value in values)


# -- count-min -------------------------------------------------------------


@pytest.mark.parametrize("seed", [3, 11, 42])
def test_countmin_never_undercounts(seed):
    hits, truth = zipf_workload(seed)
    sketch = CountMinSketch(width=1024, depth=4, seed=seed)
    for key in hits:
        sketch.update(key)
    assert sketch.total == len(hits)
    for key, count in truth.items():
        assert sketch.estimate(key) >= count


@pytest.mark.parametrize("seed", [3, 11, 42])
def test_countmin_error_bound_holds(seed):
    """error <= epsilon * N per key, failing with probability <= delta;
    allow 2x the expected failure count for finite-sample noise."""
    hits, truth = zipf_workload(seed)
    sketch = CountMinSketch(width=1024, depth=4, seed=seed)
    for key in hits:
        sketch.update(key)
    budget = sketch.epsilon * sketch.total
    violations = sum(
        1
        for key, count in truth.items()
        if sketch.estimate(key) - count > budget
    )
    allowed = max(1, int(2 * sketch.delta * len(truth)))
    assert violations <= allowed, (
        f"{violations} of {len(truth)} keys exceeded eps*N={budget:.0f} "
        f"(allowed {allowed})"
    )


def test_countmin_conservative_update_tightens():
    """Conservative update dominates the plain add-to-every-row scheme:
    per-key estimates are never larger and strictly smaller in aggregate
    on a contended (undersized) sketch."""
    hits, truth = zipf_workload(7)
    conservative = CountMinSketch(width=256, depth=4, seed=7)
    plain = CountMinSketch(width=256, depth=4, seed=7)
    for key in hits:
        conservative.update(key)
        # plain count-min: bump every row unconditionally
        for row, salt in enumerate(plain._salts):
            plain._rows[row][mix64(key ^ salt) % plain.width] += 1
    conservative_error = plain_error = 0
    for key, count in truth.items():
        cons = conservative.estimate(key)
        assert count <= cons <= plain.estimate(key)
        conservative_error += cons - count
        plain_error += plain.estimate(key) - count
    assert conservative_error < plain_error


@pytest.mark.parametrize("workers", [1, 2, 3, 4])
def test_countmin_merge_deterministic_across_shards(workers):
    hits, truth = zipf_workload(19)
    shards = shard(hits, workers)
    sketches = []
    for part in shards:
        sketch = CountMinSketch(width=512, depth=4, seed=19)
        for key in part:
            sketch.update(key)
        sketches.append(sketch)

    def merged(order):
        base = CountMinSketch(width=512, depth=4, seed=19)
        for index in order:
            base.merge(sketches[index])
        return base

    forward = merged(range(workers))
    backward = merged(reversed(range(workers)))
    # commutative: any merge order gives identical rows
    assert forward._rows == backward._rows
    assert forward.total == backward.total == len(hits)
    # overestimate-only survives the merge
    for key, count in truth.items():
        assert forward.estimate(key) >= count


def test_countmin_merge_rejects_mismatched():
    with pytest.raises(ValueError):
        CountMinSketch(64, 4, seed=1).merge(CountMinSketch(64, 4, seed=2))
    with pytest.raises(ValueError):
        CountMinSketch(64, 4, seed=1).merge(CountMinSketch(128, 4, seed=1))


def test_countmin_validates_arguments():
    with pytest.raises(ValueError):
        CountMinSketch(width=0)
    with pytest.raises(ValueError):
        CountMinSketch(depth=0)
    with pytest.raises(ValueError):
        CountMinSketch().update(1, 0)


def test_countmin_memory_constant_in_keys():
    small = CountMinSketch(width=512, depth=4, seed=5)
    large = CountMinSketch(width=512, depth=4, seed=5)
    for key in range(10):
        small.update(key)
    for key in range(20_000):
        large.update(key)
    assert small.memory_bytes() == large.memory_bytes()


def test_countmin_pickle_roundtrip():
    sketch = CountMinSketch(width=128, depth=3, seed=9)
    for key in range(500):
        sketch.update(key, key + 1)
    clone = pickle.loads(pickle.dumps(sketch))
    assert all(clone.estimate(k) == sketch.estimate(k) for k in range(500))
    assert clone.total == sketch.total


# -- space-saving ----------------------------------------------------------


@pytest.mark.parametrize("seed", [3, 11, 42])
def test_spacesaving_guaranteed_heavy_hitter_recall(seed):
    """Every key with true count > N/k must be monitored — the
    Metwally guarantee the flood detector leans on."""
    hits, truth = zipf_workload(seed)
    summary = SpaceSaving(capacity=128)
    for key in hits:
        summary.update(key)
    threshold = summary.total / summary.capacity
    for key, count in truth.items():
        if count > threshold:
            assert key in summary, (
                f"heavy hitter {key} ({count} > N/k={threshold:.0f}) lost"
            )


@pytest.mark.parametrize("seed", [3, 11, 42])
def test_spacesaving_bounds_bracket_truth(seed):
    hits, truth = zipf_workload(seed)
    summary = SpaceSaving(capacity=128)
    for key in hits:
        summary.update(key)
    assert summary.min_count <= summary.total / summary.capacity
    for key, count, error in summary.items():
        true = truth[key]
        assert count - error <= true <= count


def test_spacesaving_guaranteed_uses_lower_bound():
    summary = SpaceSaving(capacity=2)
    for _ in range(10):
        summary.update(1)
    for key in (2, 3, 4):  # churn the second slot: inherited error grows
        summary.update(key)
    assert 1 in summary.guaranteed(5)
    # the churned key's count includes inherited error — not guaranteed
    assert summary.guaranteed(2) == [1]


def test_spacesaving_eviction_is_deterministic():
    """Count ties break on the smaller key, so replays are identical."""
    runs = []
    for _ in range(2):
        summary = SpaceSaving(capacity=4)
        for key in (10, 20, 30, 40):
            summary.update(key)
        summary.update(99)  # all four tied at 1: key 10 must go
        runs.append((sorted(summary.items()), summary.evictions))
    assert runs[0] == runs[1]
    assert 10 not in dict((k, c) for k, c, _ in runs[0][0])
    assert 99 in dict((k, c) for k, c, _ in runs[0][0])


@pytest.mark.parametrize("workers", [1, 2, 3, 4])
def test_spacesaving_merge_deterministic_across_shards(workers):
    hits, truth = zipf_workload(23)
    shards = shard(hits, workers)
    summaries = []
    for part in shards:
        summary = SpaceSaving(capacity=256)
        for key in part:
            summary.update(key)
        summaries.append(summary)

    def merged(order):
        base = SpaceSaving(capacity=256)
        for index in order:
            base.merge(summaries[index])
        return base

    forward = merged(range(workers))
    backward = merged(reversed(range(workers)))
    assert sorted(forward.items()) == sorted(backward.items())
    assert forward.total == backward.total == len(hits)
    # bounds survive the merge for every surviving key
    for key, count, error in forward.items():
        if key in truth:
            assert count - error <= truth[key] <= count


def test_spacesaving_merge_associative_within_capacity():
    """With disjoint shard keys and enough capacity the merge is an
    exact union, so grouping cannot matter."""
    hits, _ = zipf_workload(29, keys=300, updates=5_000)
    parts = shard(hits, 3)
    built = []
    for part in parts:
        summary = SpaceSaving(capacity=2048)
        for key in part:
            summary.update(key)
        built.append(summary)
    left = SpaceSaving(capacity=2048)
    left.merge(built[0])
    left.merge(built[1])
    left.merge(built[2])
    inner = SpaceSaving(capacity=2048)
    inner.merge(built[1])
    inner.merge(built[2])
    right = SpaceSaving(capacity=2048)
    right.merge(built[0])
    right.merge(inner)
    assert sorted(left.items()) == sorted(right.items())


def test_spacesaving_merge_rejects_mismatched_capacity():
    with pytest.raises(ValueError):
        SpaceSaving(capacity=8).merge(SpaceSaving(capacity=16))


def test_spacesaving_validates_arguments():
    with pytest.raises(ValueError):
        SpaceSaving(capacity=0)
    with pytest.raises(ValueError):
        SpaceSaving().update(1, 0)


def test_spacesaving_memory_plateaus_at_capacity():
    small = SpaceSaving(capacity=64)
    large = SpaceSaving(capacity=64)
    for key in range(200):
        small.update(key)
    for key in range(5_000):
        large.update(key)
    assert small.memory_bytes() == large.memory_bytes()
    assert len(small) == len(large) == 64


def test_spacesaving_pickle_roundtrip():
    summary = SpaceSaving(capacity=32)
    for key in range(100):
        summary.update(key % 40)
    clone = pickle.loads(pickle.dumps(summary))
    assert sorted(clone.items()) == sorted(summary.items())


# -- HyperLogLog -----------------------------------------------------------


@pytest.mark.parametrize("cardinality", [500, 5_000, 40_000])
def test_hll_within_three_sigma(cardinality):
    """Across seeded trials the estimate stays within 3 sigma of the
    1.04/sqrt(m) standard error (per-trial, not just on average)."""
    for seed in (3, 11, 42):
        hll = HyperLogLog(precision=12, seed=seed)
        rng = SeededRng(seed, f"hll-{cardinality}")
        keys = {int(rng.random() * 2**48) for _ in range(cardinality)}
        for key in keys:
            hll.add(key)
        estimate = hll.estimate()
        tolerance = 3 * hll.relative_error * len(keys)
        assert abs(estimate - len(keys)) <= tolerance, (
            f"seed {seed}: |{estimate:.0f} - {len(keys)}| > {tolerance:.0f}"
        )


def test_hll_is_insertion_idempotent():
    hll = HyperLogLog(precision=10, seed=1)
    for _ in range(50):
        hll.add(12345)
    assert hll.estimate() == pytest.approx(1.0, abs=0.5)


@pytest.mark.parametrize("workers", [1, 2, 3, 4])
def test_hll_merge_matches_serial_exactly(workers):
    """Register-wise max is exact: merged shards equal the serial
    sketch register for register, any merge order."""
    keys = [mix64(value) & 0xFFFFFFFF for value in range(8_000)]
    serial = HyperLogLog(precision=11, seed=17)
    for key in keys:
        serial.add(key)
    shards = shard(keys, workers)
    built = []
    for part in shards:
        hll = HyperLogLog(precision=11, seed=17)
        for key in part:
            hll.add(key)
        built.append(hll)
    forward = HyperLogLog(precision=11, seed=17)
    for hll in built:
        forward.merge(hll)
    backward = HyperLogLog(precision=11, seed=17)
    for hll in reversed(built):
        backward.merge(hll)
    assert forward._registers == serial._registers == backward._registers
    assert forward.estimate() == serial.estimate()


def test_hll_merge_rejects_mismatched():
    with pytest.raises(ValueError):
        HyperLogLog(precision=10, seed=1).merge(HyperLogLog(precision=10, seed=2))
    with pytest.raises(ValueError):
        HyperLogLog(precision=10, seed=1).merge(HyperLogLog(precision=11, seed=1))


def test_hll_validates_precision():
    with pytest.raises(ValueError):
        HyperLogLog(precision=3)
    with pytest.raises(ValueError):
        HyperLogLog(precision=19)


def test_hll_memory_constant_in_keys():
    small = HyperLogLog(precision=12, seed=5)
    large = HyperLogLog(precision=12, seed=5)
    small.add(1)
    for key in range(50_000):
        large.add(key)
    assert small.memory_bytes() == large.memory_bytes()


def test_hll_pickle_roundtrip():
    hll = HyperLogLog(precision=10, seed=9)
    for key in range(3_000):
        hll.add(key)
    clone = pickle.loads(pickle.dumps(hll))
    assert clone.estimate() == hll.estimate()


# -- the tier's merge ------------------------------------------------------


@pytest.mark.parametrize("workers", [1, 2, 3, 4])
def test_tier_merge_deterministic_across_workers(workers):
    """SketchTier.merge composes all structure merges under the
    pipeline's disjoint source sharding — any order, same state."""
    rng = SeededRng(31, "tier-merge")
    events = []
    for index in range(4_000):
        source = mix64(index % 600) & 0xFFFFFFFF
        events.append((source, float(index) * 0.5, 64 + index % 128))

    def build(part):
        tier = SketchTier(width=256, capacity=64, precision=10, seed=31)
        for source, ts, length in part:
            tier._observe_quic(source, ts, length, request=(source % 2 == 0))
        return tier

    shards = [[] for _ in range(workers)]
    for event in events:
        shards[mix64(event[0]) % workers].append(event)
    tiers = [build(part) for part in shards]

    def merged(order):
        base = SketchTier(width=256, capacity=64, precision=10, seed=31)
        for index in order:
            base.merge(tiers[index])
        return base

    forward = merged(range(workers))
    backward = merged(reversed(range(workers)))
    sources = {event[0] for event in events}
    for source in sources:
        assert forward.packet_counts.estimate(
            source
        ) == backward.packet_counts.estimate(source)
    assert forward.sources._registers == backward.sources._registers
    assert sorted(forward.heavy["quic"].items()) == sorted(
        backward.heavy["quic"].items()
    )
    assert forward.hourly_requests == backward.hourly_requests
    assert forward.hourly_responses == backward.hourly_responses
    # and the merged tallies still dominate the per-source truth
    truth: dict = {}
    for source, _ts, _length in events:
        truth[source] = truth.get(source, 0) + 1
    for source, count in truth.items():
        assert forward.packet_counts.estimate(source) >= count


def test_tier_merge_rejects_mismatched_sizing():
    with pytest.raises(ValueError):
        SketchTier(width=128, seed=1).merge(SketchTier(width=256, seed=1))


def test_tier_merge_rejects_overlapping_episodes():
    left = SketchTier(width=64, capacity=8, seed=1)
    right = SketchTier(width=64, capacity=8, seed=1)
    left._observe_backscatter("tcp", 42, 0.0)
    right._observe_backscatter("tcp", 42, 0.0)
    with pytest.raises(ValueError):
        left.merge(right)


def test_tier_pickle_drops_callbacks():
    fired = []
    tier = SketchTier(width=64, capacity=8, seed=1, on_alert=fired.append)
    tier._observe_quic(1, 0.0, 100, request=True)
    clone = pickle.loads(pickle.dumps(tier))
    assert clone.on_alert is None and clone.on_ended is None
    assert clone.packet_counts.estimate(1) == 1
