"""Tests for the online monitor: watermark expiry, incremental
detection, online correlation, bounded memory, and the feeds."""

import threading
import time

import pytest

from repro.core import AnalysisConfig
from repro.core.classify import TrafficClassifier
from repro.core.dos import DosDetector
from repro.core.multivector import CONCURRENT, ISOLATED, SEQUENTIAL
from repro.core.sessions import Sessionizer
from repro.net.ipv4 import IPProto, IPv4Header
from repro.net.packet import CapturedPacket
from repro.net.tcp import TcpFlags, TcpHeader
from repro.stream import (
    AttackEnded,
    FloodAlert,
    LiveFlood,
    OnlineCorrelator,
    StreamAnalyzer,
    StreamConfig,
    StreamResultUnavailable,
    follow_pcap,
)
from repro.telescope import Scenario, ScenarioConfig
from repro.util.batching import batched
from repro.util.timeutil import HOUR


def backscatter(ts, src=1):
    return CapturedPacket(
        ts, IPv4Header(src, 2, IPProto.TCP), TcpHeader(443, 999, flags=TcpFlags.RST)
    )


def feed(sessionizer, packets):
    classifier = TrafficClassifier()
    for packet in packets:
        sessionizer.add(classifier.classify(packet))


# -- watermark expiry --------------------------------------------------------


def test_expire_uses_strict_gap_rule():
    sessionizer = Sessionizer("tcp-backscatter", timeout=300.0)
    feed(sessionizer, [backscatter(0.0)])
    # watermark exactly timeout behind: a packet at the watermark would
    # still extend the session (gap == timeout is *not* a split)
    assert sessionizer.expire(300.0) == []
    assert sessionizer.open_count == 1
    expired = sessionizer.expire(300.0 + 1e-9)
    assert len(expired) == 1
    assert sessionizer.open_count == 0
    assert sessionizer.closed == expired


def test_expire_only_touches_idle_sessions():
    sessionizer = Sessionizer("tcp-backscatter", timeout=300.0)
    feed(sessionizer, [backscatter(0.0, src=1), backscatter(250.0, src=2)])
    expired = sessionizer.expire(301.0)
    assert [s.source for s in expired] == [1]
    assert [s.source for s in sessionizer.open_sessions()] == [2]


def test_expired_session_equals_gap_closed_session():
    packets = [backscatter(0.0), backscatter(40.0), backscatter(90.0)]
    by_gap = Sessionizer("tcp-backscatter", timeout=300.0)
    feed(by_gap, packets + [backscatter(90.0 + 301.0)])
    by_watermark = Sessionizer("tcp-backscatter", timeout=300.0)
    feed(by_watermark, packets)
    by_watermark.expire(90.0 + 301.0)
    assert by_watermark.closed == by_gap.closed[:1]


def test_evict_closed_recounts_returning_sources():
    sessionizer = Sessionizer("tcp-backscatter", timeout=100.0)
    feed(sessionizer, [backscatter(0.0)])
    sessionizer.expire(500.0)
    assert sessionizer.evict_closed() == 1
    assert sessionizer.closed == []
    # the documented bounded-mode approximation: a fully idle source
    # that returns is counted as a new source
    feed(sessionizer, [backscatter(1000.0)])
    assert sessionizer.source_count == 2


# -- incremental detection ---------------------------------------------------


def crossing_packets(src=1):
    """70 RSTs at 1 pps: crosses all three Moore thresholds at t=61."""
    return [backscatter(float(ts), src=src) for ts in range(70)]


def test_observe_update_fires_exactly_once():
    detector = DosDetector()
    alerts = []

    def on_update(session):
        attack = detector.observe_update(session)
        if attack is not None:
            alerts.append((attack, session.last_ts))

    sessionizer = Sessionizer("tcp-backscatter", timeout=300.0, on_update=on_update)
    feed(sessionizer, crossing_packets())
    assert len(alerts) == 1
    attack, crossed_at = alerts[0]
    # duration > 60 s is the last condition to come true at 1 pps
    assert crossed_at == 61.0
    assert attack.vector == "tcp"
    assert attack.victim_ip == 1
    assert attack.packet_count == 62  # snapshot as of the crossing packet
    sessionizer.flush()
    assert detector.release(sessionizer.closed[0]) is True
    assert detector.release(sessionizer.closed[0]) is False


def test_observe_update_ignores_sub_threshold_sessions():
    detector = DosDetector()
    sessionizer = Sessionizer(
        "tcp-backscatter", timeout=300.0, on_update=detector.observe_update
    )
    feed(sessionizer, [backscatter(float(ts)) for ts in range(20)])
    sessionizer.flush()
    assert detector.release(sessionizer.closed[0]) is False


def test_observe_update_rejects_non_backscatter():
    from repro.core.sessions import Session

    detector = DosDetector()
    crossing = Session(
        source=1,
        traffic_class="quic-request",  # request traffic is never a flood
        first_ts=0.0,
        last_ts=70.0,
        packet_count=40,
        minute_slots={0: 40},
    )
    with pytest.raises(ValueError):
        detector.observe_update(crossing)


# -- online correlation ------------------------------------------------------


def common_flood(victim=9, vector="tcp", start=0.0, end=600.0):
    return LiveFlood(victim_ip=victim, vector=vector, start=start, end=end)


def test_correlator_concurrent():
    correlator = OnlineCorrelator()
    correlator.register_common(common_flood(start=0.0, end=600.0))
    category, partners, gap = correlator.classify(9, start=100.0, end=400.0)
    assert category == CONCURRENT
    assert partners == ("tcp",)
    assert gap is None


def test_correlator_sequential_gap():
    correlator = OnlineCorrelator()
    correlator.register_common(common_flood(start=0.0, end=600.0))
    category, partners, gap = correlator.classify(9, start=900.0, end=1200.0)
    assert category == SEQUENTIAL
    assert partners == ("tcp",)
    assert gap == 300.0


def test_correlator_isolated_on_other_victims():
    correlator = OnlineCorrelator()
    correlator.register_common(common_flood(victim=7))
    assert correlator.classify(9, 0.0, 100.0) == (ISOLATED, (), None)


def test_correlator_uses_live_session_end():
    session_like = Sessionizer("tcp-backscatter", timeout=300.0)
    feed(session_like, [backscatter(0.0, src=9), backscatter(500.0 - 300.0, src=9)])
    (open_session,) = session_like.open_sessions()
    correlator = OnlineCorrelator()
    correlator.register_common(
        LiveFlood(victim_ip=9, vector="icmp", start=0.0, session=open_session)
    )
    category, partners, _gap = correlator.classify(9, start=100.0, end=180.0)
    assert category == CONCURRENT
    assert partners == ("icmp",)


def test_correlator_prunes_only_ended_floods():
    correlator = OnlineCorrelator(horizon=1 * HOUR)
    correlator.register_common(common_flood(victim=1, end=0.0))
    active = LiveFlood(victim_ip=2, vector="tcp", start=0.0)  # never ends
    correlator.register_common(active)
    assert correlator.window_size == 2
    assert correlator.prune(watermark=2 * HOUR) == 1
    assert correlator.window_size == 1
    assert correlator.classify(2, 0.0, 10.0)[0] != ISOLATED


def test_correlator_rejects_bad_horizon():
    with pytest.raises(ValueError):
        OnlineCorrelator(horizon=0.0)


# -- bounded mode ------------------------------------------------------------


@pytest.fixture(scope="module")
def monitor_scenario():
    return Scenario(
        ScenarioConfig(seed=11, duration=3 * HOUR, research_sample=1 / 2048)
    )


def run_monitor(scenario, stream_config):
    analyzer = StreamAnalyzer(
        registry=scenario.internet.registry,
        census=scenario.internet.census,
        greynoise=scenario.internet.greynoise,
        config=AnalysisConfig(),
        stream_config=stream_config,
    )
    events = list(analyzer.events(batched(scenario.packets(), 512)))
    return analyzer, events


def test_bounded_mode_evicts_and_still_alerts(monitor_scenario):
    analyzer, events = run_monitor(
        monitor_scenario, StreamConfig(bounded=True, retain_hours=1)
    )
    alerts = [e for e in events if isinstance(e, FloodAlert)]
    ended = [e for e in events if isinstance(e, AttackEnded)]
    assert alerts and len(alerts) == len(ended)

    telemetry = analyzer.telemetry
    assert telemetry.evicted_sessions > 0
    assert telemetry.pruned_sources > 0
    assert telemetry.pruned_hours > 0
    # closed sessions never accumulate
    assert all(s.closed == [] for s in analyzer.state.sessionizers.values())
    # the rolling window keeps at most retain_hours + the current hour
    assert len(analyzer.state.hourly_requests) <= 2
    # ... but the totals in the report still cover the whole stream
    assert str(telemetry.packets) in analyzer.stream_report().replace(",", "")

    # result() refuses with a structured error naming the alternatives
    with pytest.raises(StreamResultUnavailable) as exc_info:
        analyzer.result()
    assert exc_info.value.mode == "bounded"
    message = str(exc_info.value)
    assert "stream_report()" in message
    assert "analyzer.telemetry" in message
    assert "hourly_counters()" in message
    assert "StreamConfig(mode=\"exact\")" in message


def test_bounded_alerts_match_exact_alerts(monitor_scenario):
    bounded, _ = run_monitor(monitor_scenario, StreamConfig(bounded=True))
    exact, _ = run_monitor(monitor_scenario, StreamConfig(bounded=False))
    key = lambda a: (a.vector, a.victim_ip, a.start)
    assert sorted(map(key, bounded.alerts)) == sorted(map(key, exact.alerts))


def test_process_batch_after_finish_rejected(monitor_scenario):
    analyzer, _ = run_monitor(monitor_scenario, StreamConfig(bounded=True))
    with pytest.raises(RuntimeError):
        analyzer.process_batch([backscatter(0.0)])
    assert analyzer.finish() == []  # idempotent


def test_status_line_and_telemetry(monitor_scenario):
    analyzer, _ = run_monitor(monitor_scenario, StreamConfig(bounded=True))
    line = analyzer.status_line()
    assert line.startswith("[status] watermark=")
    assert f"alerts={analyzer.telemetry.alerts}" in line
    # bounded-memory bookkeeping is surfaced in the periodic status line
    assert f"evicted={analyzer.telemetry.evicted_sessions:,}" in line
    assert f"pruned_sources={analyzer.telemetry.pruned_sources:,}" in line
    assert f"pruned_hours={analyzer.telemetry.pruned_hours:,}" in line
    assert analyzer.telemetry.watermark_lag == 0.0  # no allowed lateness
    assert analyzer.telemetry.peak_live_sources >= analyzer.telemetry.live_sources


# -- feeds -------------------------------------------------------------------


def small_capture(tmp_path, hours=0.25):
    scenario = Scenario(
        ScenarioConfig(seed=11, duration=hours * HOUR, research_sample=1 / 4096)
    )
    path = tmp_path / "capture.pcap"
    count = scenario.telescope.capture_to_pcap(scenario.packets(), str(path))
    return scenario, path, count


def test_follow_pcap_reads_complete_capture(tmp_path):
    _scenario, path, count = small_capture(tmp_path)
    batches = list(follow_pcap(path, batch_size=128, idle_timeout=0.0))
    assert sum(len(b) for b in batches) == count
    assert all(batches)
    timestamps = [p.timestamp for batch in batches for p in batch]
    assert timestamps == sorted(timestamps)


def test_follow_pcap_tails_a_growing_file(tmp_path):
    _scenario, path, count = small_capture(tmp_path)
    data = path.read_bytes()
    cut = len(data) * 2 // 3 + 7  # mid-record
    path.write_bytes(data[:cut])

    def writer():
        with open(path, "ab") as handle:
            time.sleep(0.15)
            handle.write(data[cut : cut + 1001])
            handle.flush()
            time.sleep(0.15)
            handle.write(data[cut + 1001 :])

    thread = threading.Thread(target=writer)
    thread.start()
    try:
        batches = list(
            follow_pcap(path, batch_size=64, poll_interval=0.05, idle_timeout=1.0)
        )
    finally:
        thread.join()
    assert sum(len(b) for b in batches) == count


def test_follow_pcap_validates_arguments(tmp_path):
    _scenario, path, _count = small_capture(tmp_path)
    with pytest.raises(ValueError):
        next(follow_pcap(path, batch_size=0))
    with pytest.raises(ValueError):
        next(follow_pcap(path, poll_interval=0.0))


def test_live_batches_rejects_negative_speed():
    scenario = Scenario(ScenarioConfig(seed=1, duration=0.1 * HOUR))
    with pytest.raises(ValueError):
        next(scenario.live_batches(speed=-1.0))


def test_live_batches_paces_against_the_clock():
    scenario = Scenario(
        ScenarioConfig(seed=11, duration=0.1 * HOUR, research_sample=1 / 4096)
    )
    clock = {"now": 0.0}
    naps = []

    def sleep(seconds):
        naps.append(seconds)
        clock["now"] += seconds

    batches = list(
        scenario.live_batches(
            batch_size=256, speed=3600.0, clock=lambda: clock["now"], sleep=sleep
        )
    )
    assert naps, "pacing never slept"
    newest = batches[-1][-1].timestamp
    due = (newest - scenario.config.start) / 3600.0
    assert clock["now"] == pytest.approx(due, abs=1e-6)


# -- CLI watch ---------------------------------------------------------------


def run_cli(argv):
    import io

    from repro.cli import main

    stream = io.StringIO()
    code = main(argv, stream=stream)
    return code, stream.getvalue()


WATCH_FAST = ["--hours", "1.5", "--research-sample", "0.0005", "--seed", "11"]


def test_cli_watch_simulator_feed():
    code, out = run_cli(["watch"] + WATCH_FAST + ["--status-every", "1800"])
    assert code == 0
    assert "[ALERT]" in out
    assert "[ended]" in out
    assert "[status]" in out
    assert "Streaming monitor summary (bounded mode)" in out


def test_cli_watch_pcap_feed_exact(tmp_path):
    _scenario, path, _count = small_capture(tmp_path, hours=1.0)
    code, out = run_cli(
        ["watch"] + WATCH_FAST + ["--pcap", str(path), "--exact"]
    )
    assert code == 0
    assert "[ALERT]" in out
    # exact mode ends with the full batch report
    assert "Overview (Figure 2)" in out
    assert "RETRY audit (Section 6)" in out
