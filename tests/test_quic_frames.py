"""Tests for QUIC frame serialization and parsing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.quic.frames import (
    AckFrame,
    ConnectionCloseFrame,
    CryptoFrame,
    FrameParseError,
    HandshakeDoneFrame,
    NewConnectionIdFrame,
    NewTokenFrame,
    PaddingFrame,
    PingFrame,
    StreamFrame,
    crypto_payload,
    parse_frames,
    serialize_frames,
)


def test_padding_run_collapsed():
    frames = parse_frames(b"\x00" * 37)
    assert len(frames) == 1
    assert isinstance(frames[0], PaddingFrame)
    assert frames[0].length == 37


def test_ping_roundtrip():
    assert isinstance(parse_frames(PingFrame().serialize())[0], PingFrame)


def test_ack_roundtrip():
    wire = AckFrame(largest_acked=1000, ack_delay=25, first_range=3).serialize()
    frame = parse_frames(wire)[0]
    assert frame.largest_acked == 1000
    assert frame.ack_delay == 25
    assert frame.first_range == 3


def test_crypto_roundtrip():
    wire = CryptoFrame(offset=100, data=b"tls-bytes").serialize()
    frame = parse_frames(wire)[0]
    assert frame.offset == 100
    assert frame.data == b"tls-bytes"


def test_new_token_roundtrip():
    wire = NewTokenFrame(b"\xaa" * 24).serialize()
    assert parse_frames(wire)[0].token == b"\xaa" * 24


def test_stream_roundtrip_with_fin():
    wire = StreamFrame(stream_id=4, offset=10, data=b"GET /", fin=True).serialize()
    frame = parse_frames(wire)[0]
    assert frame.stream_id == 4
    assert frame.offset == 10
    assert frame.data == b"GET /"
    assert frame.fin


def test_new_connection_id_roundtrip():
    wire = NewConnectionIdFrame(
        sequence=2, retire_prior_to=1, connection_id=b"\x01" * 8, reset_token=b"\x02" * 16
    ).serialize()
    frame = parse_frames(wire)[0]
    assert frame.sequence == 2
    assert frame.connection_id == b"\x01" * 8
    assert frame.reset_token == b"\x02" * 16


def test_connection_close_transport_and_app():
    transport = ConnectionCloseFrame(error_code=7, frame_type=6, reason=b"bad").serialize()
    frame = parse_frames(transport)[0]
    assert frame.error_code == 7 and not frame.application

    app = ConnectionCloseFrame(error_code=1, reason=b"bye", application=True).serialize()
    frame = parse_frames(app)[0]
    assert frame.application and frame.reason == b"bye"


def test_handshake_done_roundtrip():
    assert isinstance(parse_frames(HandshakeDoneFrame().serialize())[0], HandshakeDoneFrame)


def test_mixed_sequence_roundtrip():
    frames = [
        AckFrame(5),
        CryptoFrame(0, b"hello"),
        PingFrame(),
        PaddingFrame(10),
    ]
    parsed = parse_frames(serialize_frames(frames))
    assert [type(f) for f in parsed] == [AckFrame, CryptoFrame, PingFrame, PaddingFrame]


def test_unknown_frame_type_rejected():
    with pytest.raises(FrameParseError):
        parse_frames(b"\x21")


def test_truncated_crypto_rejected():
    wire = CryptoFrame(0, b"0123456789").serialize()[:-5]
    with pytest.raises(FrameParseError):
        parse_frames(wire)


def test_truncated_varint_rejected():
    with pytest.raises(FrameParseError):
        parse_frames(b"\x06\xc0")  # CRYPTO with truncated 8-byte varint


def test_invalid_new_connection_id_length_rejected():
    wire = bytearray(
        NewConnectionIdFrame(0, 0, b"\x01" * 8, b"\x00" * 16).serialize()
    )
    wire[3] = 21  # cid length > 20
    with pytest.raises(FrameParseError):
        parse_frames(bytes(wire))


def test_crypto_payload_reassembly_out_of_order():
    frames = [CryptoFrame(5, b"world"), CryptoFrame(0, b"hello")]
    assert crypto_payload(frames) == b"helloworld"


def test_crypto_payload_with_gap_keeps_prefix():
    frames = [CryptoFrame(0, b"abc"), CryptoFrame(10, b"zzz")]
    assert crypto_payload(frames) == b"abc"


@given(st.binary(max_size=512), st.integers(min_value=0, max_value=2**20))
def test_crypto_frame_roundtrip_property(data, offset):
    frame = parse_frames(CryptoFrame(offset, data).serialize())[0]
    assert frame.offset == offset
    assert frame.data == data


@given(st.lists(st.sampled_from(["ping", "done", "pad"]), min_size=1, max_size=30))
def test_frame_stream_roundtrip_property(kinds):
    frames = []
    for kind in kinds:
        if kind == "ping":
            frames.append(PingFrame())
        elif kind == "done":
            frames.append(HandshakeDoneFrame())
        else:
            frames.append(PaddingFrame(3))
    parsed = parse_frames(serialize_frames(frames))
    # adjacent padding runs merge; compare non-padding sequence
    got = [type(f) for f in parsed if not isinstance(f, PaddingFrame)]
    expected = [type(f) for f in frames if not isinstance(f, PaddingFrame)]
    assert got == expected
