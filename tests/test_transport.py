"""Tests for the lossy-link harness and PTO retransmission."""

import pytest

from repro.util.rng import SeededRng
from repro.quic.connection import ClientConnection, ServerConnection
from repro.quic.transport import (
    INITIAL_PTO,
    MAX_PTO_COUNT,
    ConnectionRunner,
    LossyLink,
)


def _runner(seed, loss=0.0, retry=False, delay=0.05):
    rng = SeededRng(seed)
    return ConnectionRunner(
        ClientConnection(rng.child("client")),
        ServerConnection(rng.child("server"), retry_enabled=retry),
        rng.child("link"),
        loss=loss,
        delay=delay,
    )


# -- link ------------------------------------------------------------


def test_link_lossless_delivers_with_delay():
    link = LossyLink(SeededRng(1), loss=0.0, delay=0.1, jitter=0.05)
    for _ in range(100):
        latency = link.transit()
        assert latency is not None
        assert 0.1 <= latency <= 0.15


def test_link_loss_rate_approximate():
    link = LossyLink(SeededRng(2), loss=0.4, delay=0.0, jitter=0.0)
    lost = sum(1 for _ in range(2000) if link.transit() is None)
    assert abs(lost / 2000 - 0.4) < 0.05


def test_link_rejects_bad_parameters():
    with pytest.raises(ValueError):
        LossyLink(SeededRng(3), loss=1.0)
    with pytest.raises(ValueError):
        LossyLink(SeededRng(3), delay=-1.0)


# -- runner ------------------------------------------------------------


def test_lossless_handshake_completes_without_retransmission():
    runner = _runner(10)
    stats = runner.run()
    assert runner.client.state == "connected"
    assert stats.retransmissions == 0
    assert stats.pto_count == 0
    assert stats.completed_at is not None
    # ~2 one-way delays for the first RT plus the client's finish
    assert stats.completed_at < 4 * 0.06 + INITIAL_PTO


def test_handshake_survives_moderate_loss():
    completed = 0
    for seed in range(20):
        runner = _runner(100 + seed, loss=0.2)
        runner.run()
        if runner.client.state == "connected":
            completed += 1
    assert completed >= 18


def test_loss_triggers_pto_retransmissions():
    retransmitted = 0
    for seed in range(20):
        runner = _runner(200 + seed, loss=0.35)
        stats = runner.run()
        retransmitted += stats.retransmissions
    assert retransmitted > 0


def test_total_blackout_gives_up_after_max_pto():
    runner = _runner(11, loss=0.0)
    runner.uplink.loss = 0.999999  # effectively everything lost upstream
    runner.uplink.rng = SeededRng(999)  # fresh stream for determinism

    class AlwaysLossy(LossyLink):
        def transit(self):
            return None

    runner.uplink = AlwaysLossy(SeededRng(1))
    stats = runner.run(timeout=10_000.0)
    assert runner.client.state != "connected"
    assert stats.pto_count == MAX_PTO_COUNT
    assert stats.completed_at is None


def test_retry_handshake_over_lossy_link():
    completed = 0
    for seed in range(15):
        runner = _runner(300 + seed, loss=0.15, retry=True)
        runner.run()
        if runner.client.state == "connected":
            completed += 1
    assert completed >= 13


def test_stats_account_for_losses():
    runner = _runner(12, loss=0.3)
    stats = runner.run()
    assert stats.datagrams_sent > 0
    assert 0 <= stats.datagrams_lost <= stats.datagrams_sent


def test_runner_deterministic():
    a = _runner(13, loss=0.25)
    b = _runner(13, loss=0.25)
    stats_a, stats_b = a.run(), b.run()
    assert (stats_a.datagrams_sent, stats_a.pto_count, stats_a.completed_at) == (
        stats_b.datagrams_sent,
        stats_b.pto_count,
        stats_b.completed_at,
    )


def test_duplicate_flight_restarts_cleanly():
    """A retransmitted client flight makes the server issue a second
    flight with a new SCID; the client must discard the stale partial
    flight and still complete (the _hs_chunks reset path)."""
    rng = SeededRng(14)
    client = ClientConnection(rng.child("c"))
    server = ServerConnection(rng.child("s"))
    initial = client.initial_datagram()
    first_flight = server.handle_datagram(initial, 1, 2, now=0.0)
    second_flight = server.handle_datagram(initial, 1, 2, now=1.0)
    # deliver only datagram 1 of flight A, then all of flight B
    client.handle_datagram(first_flight[0].data)
    out = []
    for response in second_flight:
        out.extend(client.handle_datagram(response.data))
    assert client.state == "connected"
    assert out  # the finish datagram was produced
