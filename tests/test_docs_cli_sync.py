"""README's CLI table is a contract, not prose.

Builds the real argparse parser, enumerates every subcommand and its
long flags, and asserts both directions of sync against the CLI table
in ``README.md``: every subcommand has a row listing *all* of its
flags, and the table names no command or flag the parser doesn't
have.  ``--x``/``--no-x`` BooleanOptionalAction pairs are normalized
to their positive form on both sides.
"""

import argparse
import pathlib
import re

from repro.cli import _build_parser

README = pathlib.Path(__file__).resolve().parent.parent / "README.md"

_TABLE_ROW = re.compile(r"^\|\s*`(?P<command>[a-z0-9]+)[^`]*`\s*\|")
_FLAG = re.compile(r"`(--[a-z0-9-]+)")


def parser_commands():
    """command → set of canonical long flags, straight from argparse."""
    parser = _build_parser()
    sub = next(
        action
        for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    commands = {}
    for name, subparser in sub.choices.items():
        flags = set()
        for action in subparser._actions:
            longs = [o for o in action.option_strings if o.startswith("--")]
            if not longs or "--help" in longs:
                continue
            # BooleanOptionalAction registers --x and --no-x; the first
            # long option is the canonical spelling either way.
            flags.add(longs[0])
        commands[name] = flags
    return commands


def readme_commands():
    """command → set of flags named in its README CLI table row."""
    commands = {}
    in_table = False
    for line in README.read_text().splitlines():
        if line.startswith("| command |"):
            in_table = True
            continue
        if in_table:
            if not line.startswith("|"):
                break
            match = _TABLE_ROW.match(line)
            if not match:
                continue  # separator row
            assert match.group("command") not in commands, (
                f"{match.group('command')} has two README rows"
            )
            # flags live in the last column; the description may
            # legitimately mention other commands' flags in passing
            flags_cell = line.rstrip("|").rsplit("|", 1)[-1]
            commands[match.group("command")] = set(_FLAG.findall(flags_cell))
    return commands


def normalize(flags):
    """Collapse --no-x onto --x when the positive form is present."""
    out = set()
    for flag in flags:
        if flag.startswith("--no-") and "--" + flag[len("--no-"):] in flags:
            continue
        out.add(flag)
    return out


def test_readme_cli_table_matches_parser():
    from_parser = parser_commands()
    from_readme = readme_commands()
    assert from_readme, "no CLI table rows parsed from README.md"

    missing_rows = sorted(set(from_parser) - set(from_readme))
    unknown_rows = sorted(set(from_readme) - set(from_parser))
    assert not missing_rows, f"subcommands missing from README CLI table: {missing_rows}"
    assert not unknown_rows, f"README CLI table names unknown subcommands: {unknown_rows}"

    for command in from_parser:
        documented = normalize(from_readme[command])
        actual = normalize(from_parser[command])
        missing = sorted(actual - documented)
        stale = sorted(documented - actual)
        assert not missing, f"`{command}` row is missing flags: {missing}"
        assert not stale, f"`{command}` row lists unknown flags: {stale}"


def test_readme_mentions_every_boolean_pair():
    """--x/--no-x pairs read differently: the README must show the
    negated spelling for defaults-on toggles so users can find it."""
    text = README.read_text()
    parser = _build_parser()
    sub = next(
        action
        for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    pairs = set()
    for subparser in sub.choices.values():
        for action in subparser._actions:
            if isinstance(action, argparse.BooleanOptionalAction):
                pairs.add(tuple(o for o in action.option_strings if o.startswith("--")))
    assert pairs, "expected at least one BooleanOptionalAction toggle"
    for longs in pairs:
        for spelling in longs:
            assert f"`{spelling}`" in text or f"`{longs[0]}`/`{longs[1]}`" in text, (
                f"README never shows {spelling}"
            )
