"""Detector behaviour under every adversarial scenario.

The pipeline was tuned on 2021 backscatter; these tests pin what it
does when fed the workloads it was never tuned for.  Each assertion is
about *sane* classification, which sometimes means the honest answer
is "uncategorized": an HTTP/3 request flood is request-class traffic,
and request sessions are never fed to the Moore-threshold flood
detector, so zero alerts is the correct (and pinned) outcome — not a
detection gap to be papered over.
"""

import pytest

from repro.core import QuicsandPipeline
from repro.telescope import Scenario
from repro.telescope.presets import scenario_config


@pytest.fixture(scope="module")
def analyzed():
    """Lazily-computed (scenario, result) pairs, one pipeline run each."""
    cache = {}

    def get(name):
        if name not in cache:
            scenario = Scenario(scenario_config(name))
            pipeline = QuicsandPipeline(
                registry=scenario.internet.registry,
                census=scenario.internet.census,
                greynoise=scenario.internet.greynoise,
            )
            cache[name] = (scenario, pipeline.process(scenario.packets()))
        return cache[name]

    return get


def test_optimistic_ack_is_a_fat_quic_flood(analyzed):
    """Optimistic-ACK amplification reads as a QUIC response flood whose
    bytes-per-packet profile is near-MTU — far above handshake
    backscatter."""
    scenario, result = analyzed("adv-optimistic-ack")
    model = scenario.adversarial[0]
    assert len(result.quic_attacks) >= 1
    attack = result.quic_attacks[0]
    assert attack.vector == "quic"
    assert attack.victim_ip == model.victim_ip
    session = attack.session
    assert session.byte_count / session.packet_count > 1000
    # the victim is a census-known server, so the known-server share
    # the paper reports at 98 % holds here
    assert result.victim_analysis.known_server_share == 1.0


def test_h3_request_flood_is_honestly_uncategorized(analyzed):
    """A request flood at the telescope produces request sessions and
    nothing else: no flood attack, no victims — the pipeline must not
    invent a classification it has no evidence for."""
    scenario, result = analyzed("adv-h3-flood")
    model = scenario.adversarial[0]
    assert result.quic_attacks == []
    assert result.common_attacks == []
    assert result.victim_analysis.attack_count == 0
    sources = {s.source for s in result.request_sessions}
    assert sources  # the flood did land
    assert sources <= set(model.sources)


def test_h3_slowloris_sessions_are_long_and_slow(analyzed):
    """Slowloris drips stay inside the session timeout, so each source
    holds one long session at a rate far below any flood threshold."""
    scenario, result = analyzed("adv-h3-slowloris")
    model = scenario.adversarial[0]
    assert result.quic_attacks == []
    assert result.common_attacks == []
    sessions = [
        s for s in result.request_sessions if s.source in set(model.sources)
    ]
    assert len(sessions) == len(model.sources)
    for session in sessions:
        assert session.duration > 600  # held open most of the window
        assert session.max_pps < 0.5  # never flood-fast


def test_pulse_wave_fragments_into_repeat_attacks(analyzed):
    """Inter-pulse silences exceed the session timeout, so one campaign
    is (correctly, per the Moore methodology) reported as several
    floods against the same victim."""
    scenario, result = analyzed("adv-pulse-wave")
    model = scenario.adversarial[0]
    assert len(result.quic_attacks) >= 2
    assert {a.victim_ip for a in result.quic_attacks} == {model.victim_ip}
    per_victim = result.victim_analysis.attacks_per_victim
    assert per_victim[model.victim_ip] == len(result.quic_attacks)


def test_carpet_bomb_stresses_victim_aggregation(analyzed):
    """Carpet bombing inverts the paper's victim statistics: many
    victims in one prefix, one attack each, and a known-server share
    near zero instead of 98 %."""
    scenario, result = analyzed("adv-carpet-bomb")
    model = scenario.adversarial[0]
    analysis = result.victim_analysis
    assert analysis.victim_count == len(model.victim_ips)
    assert analysis.single_attack_victim_share == 1.0
    assert analysis.known_server_share < 0.5
    prefixes = {a.victim_ip & 0xFFFFFF00 for a in result.quic_attacks}
    assert len(prefixes) == 1  # all victims share the carpet-bombed /24


def test_vn_retry_flood_lights_the_passive_retry_counter(analyzed):
    """VN/RETRY deflection backscatter is still a detectable QUIC
    response flood — and it is the only scenario where the passive
    RETRY counter (near zero in the wild, Section 6) is non-zero."""
    scenario, result = analyzed("adv-vn-retry")
    model = scenario.adversarial[0]
    assert result.passive_retry_packets > 0
    assert len(result.quic_attacks) >= 1
    assert {a.victim_ip for a in result.quic_attacks} == {model.victim_ip}
    # nothing was rejected: VN and Retry shapes are valid QUIC
    assert not result.malformed_counts
