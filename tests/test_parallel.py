"""Tests for the source-sharded parallel pipeline.

The contract under test: source-hash sharding is *exact*.  A serial
run and a parallel run over the same stream must produce identical
``PipelineResult`` contents (session lists, attack lists, hourly
series, report text).  Dissector-cache hit/miss telemetry is the one
documented exception — each worker warms its own cache, so the
hit/miss split depends on the sharding while the sum does not.
"""

import os

import pytest

from repro.net.ipv4 import IPProto, IPv4Header
from repro.net.packet import CapturedPacket
from repro.net.tcp import TcpFlags, TcpHeader
from repro.net.udp import UdpHeader
from repro.util.rng import SeededRng
from repro.util.timeutil import HOUR
from repro.quic.connection import ClientConnection
from repro.core import AnalysisConfig, PartialState, QuicsandPipeline
from repro.core.classify import PacketClass, TrafficClassifier
from repro.core.parallel import (
    decode_packet,
    encode_packet,
    run_sharded,
    shard_of,
)
from repro.core.report import build_report
from repro.telescope import Scenario, ScenarioConfig

RNG = SeededRng(777)
REQUEST_PAYLOAD = ClientConnection(RNG.child("c")).initial_datagram()

CPUS = os.cpu_count() or 1


def quic_request(ts, src, dst=2):
    return CapturedPacket(
        ts, IPv4Header(src, dst, IPProto.UDP), UdpHeader(50000, 443), REQUEST_PAYLOAD
    )


def consume_all(state, packets):
    classifier = TrafficClassifier()
    state.consume(list(packets), classifier)
    state.record_classifier(classifier)
    state.close()
    return state


# -- serial vs parallel equivalence -----------------------------------------


@pytest.fixture(scope="module")
def scenario():
    return Scenario(ScenarioConfig(duration=2 * HOUR, research_sample=1.0 / 512))


@pytest.fixture(scope="module")
def packets(scenario):
    return list(scenario.packets())


def run_pipeline(scenario, packets, workers):
    pipeline = QuicsandPipeline(
        registry=scenario.internet.registry,
        census=scenario.internet.census,
        greynoise=scenario.internet.greynoise,
        config=AnalysisConfig(workers=workers),
    )
    return pipeline.process(iter(packets))


def test_serial_and_parallel_results_identical(scenario, packets):
    serial = run_pipeline(scenario, packets, workers=1)
    parallel = run_pipeline(scenario, packets, workers=4)

    assert serial.total_packets == parallel.total_packets == len(packets)
    assert serial.window_start == parallel.window_start
    assert serial.window_end == parallel.window_end

    # session lists (dataclass equality, canonical order)
    assert serial.request_sessions == parallel.request_sessions
    assert serial.response_sessions == parallel.response_sessions
    assert serial.tcp_sessions == parallel.tcp_sessions
    assert serial.icmp_sessions == parallel.icmp_sessions

    # attack lists and downstream correlation
    assert serial.quic_attacks == parallel.quic_attacks
    assert serial.common_attacks == parallel.common_attacks
    assert (
        serial.multivector.category_shares()
        == parallel.multivector.category_shares()
    )

    # hourly series and research identification
    assert serial.hourly_requests == parallel.hourly_requests
    assert serial.hourly_responses == parallel.hourly_responses
    assert serial.hourly_research == parallel.hourly_research
    assert serial.hourly_other_quic == parallel.hourly_other_quic
    assert serial.research_sources == parallel.research_sources
    assert serial.research_packets == parallel.research_packets

    # timeout sweep (Figure 4) over the full candidate range
    assert serial.timeout_sweep.sweep(range(1, 61)) == parallel.timeout_sweep.sweep(
        range(1, 61)
    )
    assert serial.timeout_sweep.packet_count == parallel.timeout_sweep.packet_count

    # class counters agree exactly (the memo hit/miss telemetry lives
    # in the metrics registry, not in class_counts)
    assert serial.class_counts == parallel.class_counts
    assert not any(
        key.startswith("dissect-cache-") for key in serial.class_counts
    )

    # the rendered report is bit-identical
    weight = scenario.truth.research_weight
    assert build_report(serial, research_weight=weight) == build_report(
        parallel, research_weight=weight
    )


def test_worker_counts_two_and_three_agree(scenario, packets):
    """Shard-count independence beyond the 1-vs-4 case."""
    two = run_pipeline(scenario, packets, workers=2)
    three = run_pipeline(scenario, packets, workers=3)
    assert two.request_sessions == three.request_sessions
    assert two.quic_attacks == three.quic_attacks
    assert two.hourly_requests == three.hourly_requests


def test_run_sharded_empty_stream():
    state = run_sharded(iter(()), AnalysisConfig(), workers=2)
    assert state.total_packets == 0
    assert state.window_start is None
    assert all(not s.closed for s in state.sessionizers.values())


# -- PartialState.merge ------------------------------------------------------


def test_merge_empty_shard_is_identity():
    full = consume_all(
        PartialState.initial(AnalysisConfig()),
        [quic_request(float(i), src=9) for i in range(5)],
    )
    empty = PartialState.initial(AnalysisConfig())
    empty.close()
    before_sessions = [
        s for sz in full.sessionizers.values() for s in sz.closed
    ]
    full.merge(empty)
    after_sessions = [s for sz in full.sessionizers.values() for s in sz.closed]
    assert full.total_packets == 5
    assert before_sessions == after_sessions
    assert full.hourly_requests == {0: 5}

    # and the symmetric direction: empty absorbing a full shard
    other = consume_all(
        PartialState.initial(AnalysisConfig()),
        [quic_request(float(i), src=9) for i in range(5)],
    )
    base = PartialState.initial(AnalysisConfig())
    base.close()
    base.merge(other)
    assert base.total_packets == 5
    assert base.quic_source_packets == {9: 5}


def test_merge_single_source_shards():
    a = consume_all(
        PartialState.initial(AnalysisConfig()),
        [quic_request(0.0, src=10), quic_request(30.0, src=10)],
    )
    b = consume_all(
        PartialState.initial(AnalysisConfig()),
        [quic_request(10.0, src=20)],
    )
    a.merge(b)
    assert a.total_packets == 3
    assert a.quic_source_packets == {10: 2, 20: 1}
    sessions = a.sessionizers[PacketClass.QUIC_REQUEST].closed
    assert {s.source for s in sessions} == {10, 20}
    assert a.sweep.packet_count == 3
    assert a.sweep.source_count == 2


def test_merge_overlapping_hours_adds():
    hour1 = HOUR + 1.0
    a = consume_all(
        PartialState.initial(AnalysisConfig()),
        [quic_request(0.0, src=10), quic_request(hour1, src=10)],
    )
    b = consume_all(
        PartialState.initial(AnalysisConfig()),
        [quic_request(1.0, src=20), quic_request(hour1 + 1.0, src=20)],
    )
    a.merge(b)
    assert a.hourly_requests == {0: 2, 1: 2}
    assert a.per_source_hourly == {10: {0: 1, 1: 1}, 20: {0: 1, 1: 1}}


def test_merge_rejects_overlapping_sources():
    a = consume_all(PartialState.initial(AnalysisConfig()), [quic_request(0.0, src=10)])
    b = consume_all(PartialState.initial(AnalysisConfig()), [quic_request(1.0, src=10)])
    with pytest.raises(ValueError):
        a.merge(b)


def test_merge_window_bounds():
    a = consume_all(PartialState.initial(AnalysisConfig()), [quic_request(5.0, src=1)])
    b = consume_all(
        PartialState.initial(AnalysisConfig()),
        [quic_request(1.0, src=2), quic_request(9.0, src=2)],
    )
    a.merge(b)
    assert a.window_start == 1.0
    assert a.window_end == 9.0


# -- sharding and IPC encoding ----------------------------------------------


def test_shard_of_is_stable_and_in_range():
    for source in (0, 1, 0xFFFFFFFF, 0x0A000001, 12345678):
        for workers in (1, 2, 4, 7):
            shard = shard_of(source, workers)
            assert 0 <= shard < workers
            assert shard == shard_of(source, workers)


def test_encode_decode_roundtrip_preserves_analysis_fields():
    originals = [
        quic_request(1.5, src=42, dst=7),
        CapturedPacket(
            2.0,
            IPv4Header(3, 4, IPProto.TCP),
            TcpHeader(443, 999, flags=TcpFlags.SYN | TcpFlags.ACK),
        ),
        CapturedPacket(3.0, IPv4Header(5, 6, 99), None, b"opaque"),
    ]
    for original in originals:
        decoded = decode_packet(encode_packet(original))
        assert decoded.timestamp == original.timestamp
        assert decoded.src == original.src
        assert decoded.dst == original.dst
        assert decoded.proto == original.proto
        assert decoded.src_port == original.src_port
        assert decoded.dst_port == original.dst_port
        assert decoded.payload == original.payload
        assert decoded.wire_length == original.wire_length
    syn_ack = decode_packet(encode_packet(originals[1]))
    assert syn_ack.transport.is_syn_ack


# -- throughput smoke --------------------------------------------------------


@pytest.mark.skipif(CPUS < 2, reason="parallel speedup needs >= 2 cores")
def test_parallel_throughput_at_least_serial(scenario, packets):
    """On multi-core machines the sharded run must not be slower."""
    import time

    def timed(workers):
        start = time.perf_counter()
        run_pipeline(scenario, packets, workers=workers)
        return time.perf_counter() - start

    timed(1)  # warm caches and imports
    serial = min(timed(1) for _ in range(2))
    parallel = min(timed(min(4, CPUS)) for _ in range(2))
    assert parallel <= serial * 1.1  # allow 10% jitter headroom
