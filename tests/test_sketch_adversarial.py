"""Sketch-tier detector behaviour under adversarial flood shapes.

Pulse-wave and carpet-bombing scenarios replayed through
``StreamConfig(mode="sketch")``: the constant-memory tier must keep its
alert precision/recall against the exact oracle at ≥ 0.95 even for
flood shapes the 2021 telescope never produced — many simultaneous
victims in one prefix, and episodes fragmented by super-timeout
silences.
"""

import pytest

from repro.core import AnalysisConfig
from repro.stream import StreamAnalyzer, StreamConfig
from repro.telescope import Scenario
from repro.telescope.presets import scenario_config
from repro.util.batching import batched

SKETCH_SCENARIOS = ("adv-pulse-wave", "adv-carpet-bomb")

MIN_PRECISION = 0.95
MIN_RECALL = 0.95


@pytest.fixture(scope="module", params=SKETCH_SCENARIOS)
def monitor(request):
    """One adversarial scenario plus its *captured* batch list —
    generation draws fresh randomness per call, so both analyzers must
    replay the identical stream."""
    scenario = Scenario(scenario_config(request.param))
    return scenario, list(batched(scenario.packets(), 512))


def run_monitor(monitor, stream_config):
    scenario, batches = monitor
    analyzer = StreamAnalyzer(
        registry=scenario.internet.registry,
        census=scenario.internet.census,
        greynoise=scenario.internet.greynoise,
        config=AnalysisConfig(),
        stream_config=stream_config,
    )
    for _ in analyzer.events(iter(batches)):
        pass
    return analyzer


def alert_key(alert):
    return (alert.vector, alert.victim_ip, alert.start)


def test_sketch_alert_precision_recall_vs_exact(monitor):
    exact = run_monitor(monitor, StreamConfig())
    sketch = run_monitor(monitor, StreamConfig(mode="sketch"))

    oracle = {alert_key(a) for a in exact.alerts}
    approx = {alert_key(a) for a in sketch.alerts}
    assert oracle, "adversarial scenario raised no exact-mode alerts"

    true_positives = len(oracle & approx)
    precision = true_positives / len(approx) if approx else 0.0
    recall = true_positives / len(oracle)
    assert precision >= MIN_PRECISION, (precision, sorted(approx - oracle))
    assert recall >= MIN_RECALL, (recall, sorted(oracle - approx))


def test_pulse_wave_sketch_sees_every_pulse():
    """Episode fragmentation survives the sketch tier: each pulse is a
    separate alert against the same victim."""
    scenario = Scenario(scenario_config("adv-pulse-wave"))
    batches = list(batched(scenario.packets(), 512))
    sketch = run_monitor((scenario, batches), StreamConfig(mode="sketch"))
    model = scenario.adversarial[0]
    victim_alerts = [
        a for a in sketch.alerts if a.victim_ip == model.victim_ip
    ]
    assert len(victim_alerts) >= 2
    starts = sorted(a.start for a in victim_alerts)
    # successive alerts are separated by at least the inter-pulse gap
    for earlier, later in zip(starts, starts[1:]):
        assert later - earlier >= model.spec.pulse_gap


def test_carpet_bomb_sketch_tracks_every_victim():
    """Heavy-hitter capacity holds a full /24 of simultaneous victims."""
    scenario = Scenario(scenario_config("adv-carpet-bomb"))
    batches = list(batched(scenario.packets(), 512))
    sketch = run_monitor((scenario, batches), StreamConfig(mode="sketch"))
    model = scenario.adversarial[0]
    alerted = {a.victim_ip for a in sketch.alerts}
    assert alerted >= set(model.victim_ips)
