"""Cross-validation: the abstract NGINX DES vs real wire termination.

Same workload, two servers — the fast packet-rate model used by the
Table 1 harness and the wire-level pool terminating real QUIC
datagrams.  Their availability must agree, which is what justifies the
fast model's numbers.
"""

import pytest

from repro.util.rng import SeededRng
from repro.quic.connection import ClientConnection
from repro.quic.header import PacketType, RetryPacket
from repro.quic.packet import split_datagram
from repro.server.nginx import NginxConfig, NginxQuicServer
from repro.server.wire import WireNginxServer


def _clients(rng, count):
    return [
        ClientConnection(rng.child(f"client:{i}"), server_name="pool.example")
        for i in range(count)
    ]


def _replay(server, clients, rate, start=0.0):
    """Send each client's Initial once at fixed rate; count answered."""
    answered = 0
    for i, client in enumerate(clients):
        now = start + i / rate
        responses = server.handle_datagram(
            client.initial_datagram(), 0x0A000000 + i, 40000 + i, now
        )
        if responses:
            answered += 1
    return answered


def test_wire_low_rate_all_served():
    rng = SeededRng(61)
    config = NginxConfig(workers=2, connections_per_worker=64)
    server = WireNginxServer(config, rng.child("server"))
    clients = _clients(rng, 40)
    assert _replay(server, clients, rate=10.0) == 40
    assert server.stats["handshakes"] == 40
    assert server.open_states == 40


def test_wire_response_train_is_four_datagrams():
    rng = SeededRng(62)
    server = WireNginxServer(NginxConfig(workers=1), rng.child("server"), keepalive_pings=2)
    client = ClientConnection(rng.child("client"))
    responses = server.handle_datagram(client.initial_datagram(), 1, 2, now=0.0)
    # the DES's responses_per_handshake=4 assumption, verified on wire
    assert len(responses) == NginxConfig().responses_per_handshake


def test_wire_table_overflow_drops():
    rng = SeededRng(63)
    config = NginxConfig(workers=1, connections_per_worker=8)
    server = WireNginxServer(config, rng.child("server"))
    clients = _clients(rng, 20)
    answered = _replay(server, clients, rate=100.0)
    assert answered == 8
    assert server.stats["dropped_table_full"] == 12


def test_wire_sweep_recovers_capacity():
    rng = SeededRng(64)
    config = NginxConfig(
        workers=1, connections_per_worker=4, cleanup_interval=60.0, min_idle=10.0
    )
    server = WireNginxServer(config, rng.child("server"))
    first = _clients(rng, 6)
    assert _replay(server, first, rate=10.0) == 4
    # after the sweep at t=60, new handshakes are accepted again
    late_client = ClientConnection(rng.child("late"))
    responses = server.handle_datagram(late_client.initial_datagram(), 99, 99, now=61.0)
    assert responses


def test_wire_retry_is_stateless_and_mitigates():
    rng = SeededRng(65)
    config = NginxConfig(workers=1, connections_per_worker=4, retry_enabled=True)
    server = WireNginxServer(config, rng.child("server"))
    clients = _clients(rng, 30)
    # a spoofed replay only ever earns Retry packets: no state consumed
    for i, client in enumerate(clients):
        responses = server.handle_datagram(
            client.initial_datagram(), 500 + i, 600 + i, now=i * 0.01
        )
        assert len(responses) == 1
        assert isinstance(split_datagram(responses[0].data)[0], RetryPacket)
    assert server.open_states == 0
    # while a genuine client completes via the token
    genuine = ClientConnection(rng.child("genuine"))
    first = server.handle_datagram(genuine.initial_datagram(), 7777, 8888, now=1.0)
    retry_reply = genuine.handle_datagram(first[0].data)
    second = server.handle_datagram(retry_reply[0].data, 7777, 8888, now=1.1)
    assert any(
        isinstance(v.packet_type, type(PacketType.INITIAL)) for r in second for v in split_datagram(r.data)
    )
    assert server.open_states == 1


@pytest.mark.parametrize("capacity,count", [(16, 40), (32, 32)])
def test_wire_matches_abstract_model(capacity, count):
    """The cross-validation: same workload, same availability."""
    rng = SeededRng(66)
    config = NginxConfig(workers=2, connections_per_worker=capacity)
    wire = WireNginxServer(config, rng.child("wire"))
    abstract = NginxQuicServer(config)

    clients = _clients(rng, count)
    wire_answered = 0
    abstract_answered = 0
    for i, client in enumerate(clients):
        now = i / 50.0
        ip, port = 0x0B000000 + i, 50000 + i
        if wire.handle_datagram(client.initial_datagram(), ip, port, now):
            wire_answered += 1
        if abstract.handle_initial(now, (ip * 31 + port)):
            abstract_answered += 1
    assert wire_answered == abstract_answered
    assert wire.open_states == abstract.open_states
