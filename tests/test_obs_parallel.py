"""Metrics under multiprocessing and cache gating.

Two contracts:

1. **Exactly-once merge.** In a ``workers=N`` run every worker resets
   its (fork-inherited) registry, publishes only its own shard's
   deltas, and the parent merges each snapshot once — so the merged
   pipeline counters equal the serial run's counters exactly.  Double
   counting (merging a snapshot twice, or a worker shipping the
   parent's pre-fork totals) would show up as inflated packet counts.

2. **Cache gating.** ``REPRO_DISABLE_TEMPLATE_CACHE=1`` bypasses the
   wire-template and keystream memos, so the collector-backed
   hit counters must report zero hits.
"""

import pytest

from repro import obs
from repro.core import AnalysisConfig, QuicsandPipeline
from repro.telescope import Scenario, ScenarioConfig
from repro.util.timeutil import HOUR


@pytest.fixture(scope="module")
def scenario():
    return Scenario(ScenarioConfig(duration=1 * HOUR, research_sample=1.0 / 512))


@pytest.fixture(scope="module")
def packets(scenario):
    return list(scenario.packets())


@pytest.fixture
def metrics_on():
    """Enable the process-wide registry for one test, zeroed both ways."""
    was = obs.enabled()
    obs.REGISTRY.reset()
    obs.enable()
    yield obs.REGISTRY
    obs.REGISTRY.reset()
    obs.set_enabled(was)


def run_pipeline(scenario, packets, workers):
    pipeline = QuicsandPipeline(
        registry=scenario.internet.registry,
        census=scenario.internet.census,
        greynoise=scenario.internet.greynoise,
        config=AnalysisConfig(workers=workers),
    )
    return pipeline.process(iter(packets))


def pipeline_totals(registry):
    packets = registry.get("repro_pipeline_packets_total")
    classified = registry.get("repro_pipeline_classified_total")
    sessions = registry.get("repro_pipeline_sessions_total")
    attacks = registry.get("repro_pipeline_attacks_total")
    return {
        "packets": packets.value(),
        "classified": dict(
            (labels["klass"], v) for labels, v in classified.samples()
        ),
        "sessions": dict(
            (labels["klass"], v) for labels, v in sessions.samples()
        ),
        "attacks": dict(
            (labels["vector"], v) for labels, v in attacks.samples()
        ),
    }


def test_parallel_metrics_merge_exactly_once(scenario, packets, metrics_on):
    serial_result = run_pipeline(scenario, packets, workers=1)
    serial = pipeline_totals(metrics_on)

    metrics_on.reset()
    parallel_result = run_pipeline(scenario, packets, workers=2)
    parallel = pipeline_totals(metrics_on)

    # ground truth: the analysis itself agrees
    assert serial_result.total_packets == parallel_result.total_packets

    # counters merged exactly once: equal to the serial totals, which
    # equal the stream length
    assert parallel["packets"] == serial["packets"] == len(packets)
    assert parallel["classified"] == serial["classified"]
    assert parallel["sessions"] == serial["sessions"]
    assert parallel["attacks"] == serial["attacks"]

    # worker-side shard counters cover the stream exactly once too
    shard = metrics_on.get("repro_parallel_shard_packets_total")
    assert sum(v for _, v in shard.samples()) == len(packets)
    assert metrics_on.get("repro_parallel_workers").value() == 2


def test_parallel_merge_is_deterministic(scenario, packets, metrics_on):
    run_pipeline(scenario, packets, workers=2)
    first = pipeline_totals(metrics_on)
    metrics_on.reset()
    run_pipeline(scenario, packets, workers=2)
    assert pipeline_totals(metrics_on) == first


def test_disabled_template_cache_reports_zero_hits(metrics_on, monkeypatch):
    monkeypatch.setenv("REPRO_DISABLE_TEMPLATE_CACHE", "1")

    # fresh caches: the keystream memo is process-global, so clear it
    # (its CacheInfo would otherwise carry hits from earlier tests)
    from repro.quic import crypto
    from repro.telescope import backscatter, scanners

    crypto._cached_keystream.cache_clear()
    for cache in (backscatter._RESPONSE_TEMPLATES, scanners._INITIAL_TEMPLATES):
        cache.hits = cache.misses = 0
        cache._cache.clear()
    backscatter._INITIAL_SEALERS.clear()
    backscatter._INITIAL_SEALER_STATS.update(hits=0, misses=0)

    scenario = Scenario(
        ScenarioConfig(duration=0.5 * HOUR, research_sample=1.0 / 2048)
    )
    for _ in scenario.packets():
        pass

    snap = metrics_on.snapshot()  # runs the cache collectors
    hits = snap["repro_template_cache_hits_total"][4]
    assert all(v == 0 for v in hits.values()), hits
    # and the caches genuinely held nothing
    sizes = snap["repro_template_cache_size"][4]
    assert all(v == 0 for v in sizes.values()), sizes
