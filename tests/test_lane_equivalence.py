"""Lane equivalence: the batch fast lane is invisible in the results.

The acceptance contract of the columnar fast lane
(:mod:`repro.core.batchlane`): a run with ``fast_lane=True`` produces a
bit-identical :class:`PipelineResult` — sessions, attacks, hourly
series, malformed tallies, and the rendered report — to the rich path,
across serial and worker counts 1–4 (shared-memory ring transport),
the streaming monitor's exact mode, the raw pcap record feed, and a
fault-injected stream exercising the full malformed taxonomy.
"""

import dataclasses

import pytest

from repro.core import QuicsandPipeline
from repro.core.batchlane import BatchLane
from repro.core.pipeline import AnalysisConfig, PartialState
from repro.core.report import build_report
from repro.faults import FaultInjector, FaultSpec
from repro.net.pcap import read_pcap, read_pcap_records, write_pcap
from repro.telescope import Scenario, ScenarioConfig
from repro.util.timeutil import HOUR

SCENARIO_KW = dict(seed=11, duration=HOUR, research_sample=1 / 2048)
FAULT_SPEC = "bitflip=0.03,byteflip=0.02,truncate=0.02,zero=0.01,garbage=0.04,duplicate=0.02,drop=0.02,reorder=0.02"
FAULT_SEED = 4242

#: result fields compared by value; these three hold internal helper
#: objects without value equality, and everything they influence is
#: covered by the compared fields and the rendered report.
_IDENTITY_FIELDS = {"config", "timeout_sweep", "quic_detector", "common_detector"}


@pytest.fixture(scope="module")
def scenario():
    return Scenario(ScenarioConfig(**SCENARIO_KW))


@pytest.fixture(scope="module")
def packets(scenario):
    return list(scenario.packets())


@pytest.fixture(scope="module")
def faulted_packets():
    injector = FaultInjector(FaultSpec.parse(FAULT_SPEC), FAULT_SEED)
    clean = Scenario(ScenarioConfig(**SCENARIO_KW)).packets()
    return list(injector.wrap(clean))


def make_pipeline(scenario, **config_kw):
    return QuicsandPipeline(
        registry=scenario.internet.registry,
        census=scenario.internet.census,
        greynoise=scenario.internet.greynoise,
        config=AnalysisConfig(**config_kw),
    )


def run(scenario, packets, **config_kw):
    return make_pipeline(scenario, **config_kw).process(iter(packets))


def assert_identical(reference, other, scenario, label):
    for field in dataclasses.fields(reference):
        if field.name in _IDENTITY_FIELDS:
            continue
        assert getattr(reference, field.name) == getattr(
            other, field.name
        ), (label, field.name)
    assert reference.timeout_sweep.sweep(range(1, 61)) == other.timeout_sweep.sweep(
        range(1, 61)
    ), label
    weight = scenario.truth.research_weight
    assert build_report(reference, research_weight=weight) == build_report(
        other, research_weight=weight
    ), label


def test_fast_vs_rich_serial(scenario, packets):
    rich = run(scenario, packets, fast_lane=False)
    fast = run(scenario, packets, fast_lane=True)
    assert_identical(rich, fast, scenario, "serial")
    assert not any(
        key.startswith("dissect-cache-") for key in fast.class_counts
    )


def test_fast_lane_across_worker_counts(scenario, packets):
    """Rich serial == fast lane at workers 1–4 (workers > 1 ride the
    shared-memory ring transport)."""
    rich = run(scenario, packets, fast_lane=False)
    for workers in (1, 2, 3, 4):
        fast = run(scenario, packets, fast_lane=True, workers=workers)
        assert_identical(rich, fast, scenario, f"workers={workers}")


def test_rich_tuple_transport_unchanged(scenario, packets):
    """--no-fast-lane with workers keeps the legacy tuple transport and
    still matches the rich serial run."""
    rich = run(scenario, packets, fast_lane=False)
    tuple_parallel = run(scenario, packets, fast_lane=False, workers=2)
    assert_identical(rich, tuple_parallel, scenario, "tuple-transport")


def test_fast_vs_rich_streaming_exact(scenario, packets):
    from repro.stream import StreamAnalyzer
    from repro.util.batching import batched

    results = {}
    for fast_lane in (False, True):
        analyzer = StreamAnalyzer(
            registry=scenario.internet.registry,
            census=scenario.internet.census,
            greynoise=scenario.internet.greynoise,
            config=AnalysisConfig(fast_lane=fast_lane),
        )
        for _ in analyzer.events(batched(iter(packets), 512)):
            pass
        results[fast_lane] = analyzer.result()
    assert_identical(results[False], results[True], scenario, "streaming")


def test_fast_vs_rich_under_faults(scenario, faulted_packets):
    """The malformed taxonomy — slugs and tallies — survives the lane,
    serially and through the ring transport."""
    rich = run(scenario, faulted_packets, fast_lane=False)
    assert rich.malformed_counts, "fault mix produced no malformed input"
    fast = run(scenario, faulted_packets, fast_lane=True)
    assert_identical(rich, fast, scenario, "faults-serial")
    fast_parallel = run(
        scenario, faulted_packets, fast_lane=True, workers=2
    )
    assert_identical(rich, fast_parallel, scenario, "faults-workers=2")


def test_pcap_record_feed_equivalent(tmp_path, scenario, packets):
    """The object-free pcap record feed (read_pcap_records →
    consume_lane_records) matches the CapturedPacket path bit for bit."""
    path = tmp_path / "lane.pcap"
    write_pcap(path, iter(packets))

    reference = make_pipeline(scenario, fast_lane=True).process(read_pcap(path))

    pipeline = make_pipeline(scenario, fast_lane=True)
    cfg = pipeline.config
    lane = BatchLane(dissect_payloads=cfg.dissect_payloads)
    state = PartialState.initial(cfg)
    for batch in read_pcap_records(path, cfg.batch_size):
        state.consume_lane_records(batch, lane)
    state.record_classifier(lane)
    state.close()
    records_result = pipeline.finalize_state(state)

    assert_identical(reference, records_result, scenario, "pcap-records")
