"""Tests for the QUIC version registry."""

import pytest

from repro.quic.versions import (
    DRAFT_27,
    DRAFT_29,
    GQUIC_Q043,
    KNOWN_VERSIONS,
    MVFST_27,
    QUIC_V1,
    VERSION_NEGOTIATION,
    is_greased,
    is_known,
    version_by_value,
)


def test_v1_value_and_salt():
    assert QUIC_V1.value == 0x00000001
    # RFC 9001 §5.2 initial salt for v1
    assert QUIC_V1.initial_salt.hex() == "38762cf7f55934b34d179ae6a4c80cadccbb7f0a"


def test_draft_values():
    assert DRAFT_29.value == 0xFF00001D
    assert DRAFT_27.value == 0xFF00001B
    assert DRAFT_29.initial_salt != QUIC_V1.initial_salt


def test_mvfst_uses_draft27_wire_format():
    assert MVFST_27.value == 0xFACEB002
    assert MVFST_27.initial_salt == DRAFT_27.initial_salt
    assert MVFST_27.name == "mvfst-draft-27"


def test_gquic_not_ietf_layout():
    assert not GQUIC_Q043.ietf_layout
    assert GQUIC_Q043.value == int.from_bytes(b"Q043", "big")
    assert all(v.ietf_layout for v in (QUIC_V1, DRAFT_29, DRAFT_27, MVFST_27))


def test_lookup_by_value():
    assert version_by_value(0x00000001) is QUIC_V1
    assert version_by_value(0xFACEB002) is MVFST_27
    assert version_by_value(0xDEADBEEF) is None
    assert version_by_value(VERSION_NEGOTIATION) is None


def test_is_known():
    for version in KNOWN_VERSIONS:
        assert is_known(version.value)
    assert not is_known(0x12345678)


@pytest.mark.parametrize("value", [0x0A0A0A0A, 0x1A2A3A4A, 0xFAFAFAFA])
def test_greased_values(value):
    assert is_greased(value)


@pytest.mark.parametrize("value", [0x00000001, 0xFF00001D, 0x0A0A0A0B])
def test_non_greased_values(value):
    assert not is_greased(value)


def test_registry_has_no_duplicate_values():
    values = [v.value for v in KNOWN_VERSIONS]
    assert len(values) == len(set(values))


def test_str_rendering():
    assert "v1" in str(QUIC_V1)
    assert "0x00000001" in str(QUIC_V1)
