"""Tests for the telescope traffic generators."""

import pytest

from repro.net.addresses import IPv4Network
from repro.net.ipv4 import IPProto, IPv4Header
from repro.net.packet import CapturedPacket
from repro.net.udp import UdpHeader
from repro.util.rng import SeededRng
from repro.util.timeutil import APRIL_1_2021, DAY, HOUR
from repro.internet.topology import InternetModel
from repro.telescope.attacks import (
    CONCURRENT,
    ISOLATED,
    QUIC,
    SEQUENTIAL,
    AttackPlanConfig,
    AttackPlanner,
    AttackTrafficModel,
)
from repro.telescope.backscatter import (
    IcmpVictimResponder,
    QuicVictimResponder,
    ResponderPolicy,
    TcpVictimResponder,
    version_named,
)
from repro.telescope.diurnal import DiurnalModel
from repro.telescope.noise import MisconfigurationModel, StrayUdpModel
from repro.telescope.scanners import BotScannerModel, ProbePool, ResearchScannerModel
from repro.telescope.telescope import Telescope, merge_streams

START = APRIL_1_2021
VICTIM = 0x60001234


@pytest.fixture(scope="module")
def internet():
    return InternetModel(SeededRng(31))


# -- diurnal ---------------------------------------------------------------


def test_diurnal_peaks_at_6_and_18():
    model = DiurnalModel()
    peak_6 = model.factor(START + 6 * HOUR)
    peak_18 = model.factor(START + 18 * HOUR)
    trough = model.factor(START + 12 * HOUR)
    night = model.factor(START + 1 * HOUR)
    assert peak_6 > trough and peak_18 > trough
    assert peak_6 > night


def test_diurnal_daily_mean_is_one():
    model = DiurnalModel()
    samples = [model.factor(START + i * 900) for i in range(96)]
    assert abs(sum(samples) / len(samples) - 1.0) < 0.01


def test_diurnal_thinning_bounded():
    model = DiurnalModel()
    for i in range(96):
        p = model.thin_probability(START + i * 900)
        assert 0 < p <= 1.0 + 1e-9


# -- probe pool / research scanners ------------------------------------------


def test_probe_pool_cycles_distinct_probes():
    pool = ProbePool(SeededRng(1), size=4)
    probes = [pool.next_probe() for _ in range(8)]
    assert probes[0] == probes[4]
    assert len({bytes(p) for p in probes}) == 4
    assert all(len(p) == 1200 for p in probes)


def test_probe_pool_rejects_empty():
    with pytest.raises(ValueError):
        ProbePool(SeededRng(1), size=0)


def test_research_sweep_counts_and_order(internet):
    model = ResearchScannerModel(
        scanner=internet.research_scanners[0],
        internet=internet,
        rng=SeededRng(2),
        sweep_interval=6 * HOUR,
        sweep_duration=2 * HOUR,
        sample=1.0 / 4096,
    )
    packets = list(model.packets(START, START + 6 * HOUR))
    expected = int(internet.telescope_net.size / 4096)
    assert len(packets) == expected
    assert model.weight == 4096
    times = [p.timestamp for p in packets]
    assert times == sorted(times)
    assert all(p.dst_port == 443 for p in packets)
    assert all(p.src == internet.research_scanners[0].address for p in packets)
    assert all(p.dst in internet.telescope_net for p in packets)


def test_research_two_sweeps_in_window(internet):
    model = ResearchScannerModel(
        scanner=internet.research_scanners[0],
        internet=internet,
        rng=SeededRng(2),
        sweep_interval=12 * HOUR,
        sweep_duration=1 * HOUR,
        sample=1.0 / 8192,
    )
    one = len(list(model.packets(START, START + 12 * HOUR)))
    two = len(list(model.packets(START, START + 24 * HOUR)))
    assert two == 2 * one


# -- bot scanners ------------------------------------------------------------


def test_bot_sessions_diurnal_and_sorted(internet):
    model = BotScannerModel(internet=internet, rng=SeededRng(3), sessions_per_day=2000)
    packets = list(model.packets(START, START + DAY))
    times = [p.timestamp for p in packets]
    assert times == sorted(times)
    assert all(p.dst_port == 443 for p in packets)
    # diurnal shape: the 6:00 hour beats the 12:00 hour
    by_hour = {}
    for p in packets:
        by_hour[int((p.timestamp - START) // HOUR)] = (
            by_hour.get(int((p.timestamp - START) // HOUR), 0) + 1
        )
    assert by_hour.get(6, 0) > by_hour.get(12, 0)


def test_bot_sources_are_bots(internet):
    model = BotScannerModel(internet=internet, rng=SeededRng(4), sessions_per_day=500)
    bots = {b.address for b in internet.bot_hosts}
    for packet in model.packets(START, START + 6 * HOUR):
        assert packet.src in bots


# -- backscatter responders --------------------------------------------------


def test_quic_responder_train_structure():
    policy = ResponderPolicy(vn_probability=0.0)
    responder = QuicVictimResponder(VICTIM, SeededRng(5), policy)
    packets = responder.respond(100.0, 0x2C000001, 40000)
    assert len(packets) >= 2
    assert all(p.src == VICTIM for p in packets)
    assert all(p.src_port == 443 for p in packets)
    assert packets[0].timestamp <= packets[1].timestamp


def test_quic_responder_source_scid_policy_caches():
    policy = ResponderPolicy(scid_policy="source", vn_probability=0.0)
    responder = QuicVictimResponder(VICTIM, SeededRng(6), policy)
    responder.respond(0.0, 111, 1)
    responder.respond(1.0, 111, 2)
    responder.respond(2.0, 222, 3)
    assert responder.unique_scids == 2


def test_quic_responder_vn_packets():
    policy = ResponderPolicy(vn_probability=1.0)
    responder = QuicVictimResponder(VICTIM, SeededRng(7), policy)
    packets = responder.respond(0.0, 111, 1)
    assert len(packets) == 1
    from repro.quic.header import VersionNegotiationPacket, parse_header

    assert isinstance(parse_header(packets[0].payload), VersionNegotiationPacket)


def test_quic_responder_versions():
    policy = ResponderPolicy(version=version_named("mvfst-draft-27"), vn_probability=0.0)
    responder = QuicVictimResponder(VICTIM, SeededRng(8), policy)
    packets = responder.respond(0.0, 111, 1)
    from repro.quic.header import parse_header

    view = parse_header(packets[0].payload)
    assert view.version == version_named("mvfst-draft-27").value


def test_version_named_unknown_raises():
    with pytest.raises(KeyError):
        version_named("quic-v99")


def test_tcp_responder_flags():
    responder = TcpVictimResponder(VICTIM, SeededRng(9), rst_fraction=0.0)
    packet = responder.respond(0.0, 111, 2222)[0]
    assert packet.transport.is_syn_ack
    responder_rst = TcpVictimResponder(VICTIM, SeededRng(9), rst_fraction=1.0)
    assert responder_rst.respond(0.0, 111, 2222)[0].transport.is_rst


def test_icmp_responder_echo_reply():
    responder = IcmpVictimResponder(VICTIM, SeededRng(10))
    packet = responder.respond(0.0, 111, 0)[0]
    assert packet.is_icmp
    assert packet.transport.is_backscatter


# -- attack planner ------------------------------------------------------------


def test_planner_flood_rate(internet):
    planner = AttackPlanner(internet, SeededRng(11))
    plan = planner.plan(START, START + DAY)
    assert abs(len(plan.quic_floods) - 96) <= 1  # 4/hour x 24h


def test_planner_floods_inside_window(internet):
    planner = AttackPlanner(internet, SeededRng(12))
    plan = planner.plan(START, START + DAY)
    for flood in plan.all_floods:
        assert flood.start >= START
        assert flood.end <= START + DAY + 1


def test_planner_category_mix(internet):
    config = AttackPlanConfig(quic_floods_per_hour=40)
    planner = AttackPlanner(internet, SeededRng(13), config)
    plan = planner.plan(START, START + DAY)
    categories = [f.category for f in plan.quic_floods]
    share = categories.count(CONCURRENT) / len(categories)
    assert 0.4 < share < 0.62
    assert categories.count(ISOLATED) / len(categories) < 0.2


def test_planner_concurrent_partner_overlaps(internet):
    planner = AttackPlanner(internet, SeededRng(14))
    plan = planner.plan(START, START + 2 * DAY)
    for flood in plan.quic_floods:
        if flood.category == CONCURRENT:
            assert flood.partner is not None
            overlap = min(flood.end, flood.partner.end) - max(
                flood.start, flood.partner.start
            )
            assert overlap >= 1.0


def test_planner_sequential_partner_disjoint(internet):
    planner = AttackPlanner(internet, SeededRng(15))
    plan = planner.plan(START, START + 2 * DAY)
    checked = 0
    for flood in plan.quic_floods:
        if flood.category == SEQUENTIAL and flood.partner is not None:
            overlap = min(flood.end, flood.partner.end) - max(
                flood.start, flood.partner.start
            )
            assert overlap <= 0
            checked += 1
    assert checked > 0


def test_planner_isolated_has_no_partner(internet):
    planner = AttackPlanner(internet, SeededRng(16))
    plan = planner.plan(START, START + 2 * DAY)
    for flood in plan.quic_floods:
        if flood.category == ISOLATED:
            assert flood.partner is None


def test_planner_mostly_known_victims(internet):
    config = AttackPlanConfig(quic_floods_per_hour=20)
    planner = AttackPlanner(internet, SeededRng(17), config)
    plan = planner.plan(START, START + DAY)
    known = sum(
        1 for f in plan.quic_floods if internet.census.is_known_quic_server(f.victim_ip)
    )
    assert known / len(plan.quic_floods) > 0.9


def test_planner_background_avoids_quic_victims(internet):
    planner = AttackPlanner(internet, SeededRng(18))
    plan = planner.plan(START, START + DAY)
    quic_victims = {f.victim_ip for f in plan.quic_floods}
    partner_ids = {id(f.partner) for f in plan.quic_floods if f.partner}
    for flood in plan.common_floods:
        if id(flood) not in partner_ids:
            assert flood.victim_ip not in quic_victims


def test_attack_traffic_sorted_and_sourced(internet):
    planner = AttackPlanner(
        internet, SeededRng(19), AttackPlanConfig(quic_floods_per_hour=2, common_floods_per_hour=2)
    )
    plan = planner.plan(START, START + 6 * HOUR)
    traffic = AttackTrafficModel(internet, SeededRng(20))
    victims = {f.victim_ip for f in plan.all_floods}
    last = 0.0
    count = 0
    for packet in traffic.packets(plan):
        assert packet.timestamp >= last
        last = packet.timestamp
        assert packet.src in victims
        count += 1
    assert count > 100


# -- noise ------------------------------------------------------------


def test_misconfig_sessions_small(internet):
    model = MisconfigurationModel(internet, SeededRng(21), sessions_per_day=2000)
    packets = list(model.packets(START, START + 6 * HOUR))
    assert packets
    times = [p.timestamp for p in packets]
    assert times == sorted(times)
    assert all(p.src_port == 443 for p in packets)


def test_stray_udp_fails_dissection(internet):
    from repro.core.dissect import QuicDissector

    model = StrayUdpModel(internet, SeededRng(22), packets_per_day=5000)
    dissector = QuicDissector()
    packets = list(model.packets(START, START + 12 * HOUR))
    assert packets
    for packet in packets:
        assert not dissector.dissect(packet.payload).valid


# -- telescope -----------------------------------------------------------


def test_telescope_filters_by_prefix():
    telescope = Telescope(IPv4Network.from_cidr("44.0.0.0/9"))

    def pkt(dst):
        return CapturedPacket(
            0.0, IPv4Header(1, dst, IPProto.UDP), UdpHeader(1, 2), b""
        )

    inside = pkt(IPv4Network.from_cidr("44.0.0.0/9").address_at(5))
    outside = pkt(0x08080808)
    captured = list(telescope.capture([inside, outside]))
    assert captured == [inside]
    assert telescope.packets_seen == 1
    assert telescope.packets_dropped == 1


def test_telescope_extrapolation_factor():
    telescope = Telescope(IPv4Network.from_cidr("44.0.0.0/9"))
    assert telescope.extrapolation_factor == 512


def test_merge_streams_orders_packets():
    def pkt(t):
        return CapturedPacket(t, IPv4Header(1, 2, IPProto.UDP), UdpHeader(1, 2), b"")

    a = [pkt(1.0), pkt(3.0)]
    b = [pkt(2.0), pkt(4.0)]
    merged = list(merge_streams(iter(a), iter(b)))
    assert [p.timestamp for p in merged] == [1.0, 2.0, 3.0, 4.0]
