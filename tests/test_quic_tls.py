"""Tests for the minimal TLS 1.3 handshake messages."""

import pytest

from repro.util.rng import SeededRng
from repro.quic import tls


def _hello(**kwargs):
    defaults = dict(random=bytes(32), server_name="www.example.org")
    defaults.update(kwargs)
    return tls.ClientHello(**defaults)


def test_client_hello_roundtrip():
    hello = _hello(alpn=("h3", "h3-29"), session_id=b"\x07" * 16)
    parsed = tls.ClientHello.parse(hello.serialize())
    assert parsed.server_name == "www.example.org"
    assert parsed.alpn == ("h3", "h3-29")
    assert parsed.session_id == b"\x07" * 16
    assert tls.TLS_AES_128_GCM_SHA256 in parsed.cipher_suites


def test_client_hello_without_sni():
    parsed = tls.ClientHello.parse(_hello(server_name=None).serialize())
    assert parsed.server_name is None


def test_client_hello_transport_parameters_carried():
    parsed = tls.ClientHello.parse(
        _hello(transport_parameters=b"\x05\x04abcd").serialize()
    )
    assert parsed.transport_parameters == b"\x05\x04abcd"


def test_client_hello_parse_rejects_server_hello():
    sh = tls.ServerHello(random=bytes(32)).serialize()
    with pytest.raises(tls.TlsParseError):
        tls.ClientHello.parse(sh)


def test_client_hello_parse_rejects_truncated():
    wire = _hello().serialize()
    with pytest.raises(tls.TlsParseError):
        tls.ClientHello.parse(wire[: len(wire) // 2])


def test_server_hello_roundtrip():
    sh = tls.ServerHello(random=b"\x01" * 32, session_id=b"\x02" * 8)
    parsed = tls.ServerHello.parse(sh.serialize())
    assert parsed.random == b"\x01" * 32
    assert parsed.session_id == b"\x02" * 8
    assert parsed.cipher_suite == tls.TLS_AES_128_GCM_SHA256


def test_server_hello_parse_rejects_client_hello():
    with pytest.raises(tls.TlsParseError):
        tls.ServerHello.parse(_hello().serialize())


def test_server_flight_sizes_scale_with_certificate():
    rng = SeededRng(1)
    small = tls.build_server_flight(rng.child("a"), cert_chain_len=800)
    large = tls.build_server_flight(rng.child("b"), cert_chain_len=3000)
    assert len(large.certificate) - len(small.certificate) == 2200
    assert len(small.handshake_payload) > 800


def test_server_flight_contains_all_messages():
    flight = tls.build_server_flight(SeededRng(2))
    payload = flight.handshake_payload
    # walk message headers
    types = []
    offset = 0
    while offset + 4 <= len(payload):
        types.append(payload[offset])
        offset += 4 + int.from_bytes(payload[offset + 1 : offset + 4], "big")
    assert types == [
        tls.ENCRYPTED_EXTENSIONS,
        tls.CERTIFICATE,
        tls.CERTIFICATE_VERIFY,
        tls.FINISHED,
    ]
    assert offset == len(payload)


def test_looks_like_client_hello():
    assert tls.looks_like_client_hello(_hello().serialize())
    assert not tls.looks_like_client_hello(b"\x16\x03\x01")
    assert not tls.looks_like_client_hello(b"")
    assert not tls.looks_like_client_hello(SeededRng(3).randbytes(200))


def test_client_hello_padded_sizes_realistic():
    # A typical CH with SNI and ALPN lands in the 150-400 byte range
    # before QUIC-level padding.
    wire = _hello(transport_parameters=bytes(64)).serialize()
    assert 150 <= len(wire) <= 400
