"""Property-based invariants and failure injection for the pipeline.

These tests defend the claims the analysis quietly relies on: the
dissector never crashes on arbitrary bytes, the classifier conserves
packets, sessionization is exactly the per-source gap rule, and the
pipeline survives malformed packets mid-stream.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.icmp import IcmpHeader
from repro.net.ipv4 import IPProto, IPv4Header
from repro.net.packet import CapturedPacket
from repro.net.tcp import TcpFlags, TcpHeader
from repro.net.udp import UdpHeader
from repro.core import QuicsandPipeline
from repro.core.classify import PacketClass, TrafficClassifier
from repro.core.dissect import QuicDissector
from repro.core.pipeline import AnalysisConfig
from repro.core.sessions import Sessionizer, TimeoutSweep
from repro.telescope import Scenario, ScenarioConfig
from repro.util.timeutil import HOUR


# -- dissector total safety --------------------------------------------------


@settings(max_examples=300)
@given(st.binary(max_size=1400))
def test_dissector_never_raises(payload):
    dissector = QuicDissector(cache_size=1)
    dissection = dissector.dissect(payload)
    assert isinstance(dissection.valid, bool)


@settings(max_examples=100)
@given(st.binary(min_size=1, max_size=1400), st.integers(0, 1399), st.integers(0, 255))
def test_dissector_survives_bit_flips_in_real_packets(noise, index, value):
    from repro.util.rng import SeededRng
    from repro.quic.connection import ClientConnection

    wire = bytearray(ClientConnection(SeededRng(1)).initial_datagram())
    wire[index % len(wire)] = value
    dissector = QuicDissector(cache_size=1)
    dissector.dissect(bytes(wire))  # must not raise
    dissector.dissect(bytes(noise))


# -- classifier conservation ---------------------------------------------------


def _mixed_packets():
    packets = [
        CapturedPacket(0.0, IPv4Header(1, 2, IPProto.UDP), UdpHeader(443, 1000), b"x"),
        CapturedPacket(1.0, IPv4Header(1, 2, IPProto.UDP), UdpHeader(1000, 443), b"y"),
        CapturedPacket(2.0, IPv4Header(1, 2, IPProto.UDP), UdpHeader(53, 53), b"z"),
        CapturedPacket(3.0, IPv4Header(1, 2, IPProto.TCP), TcpHeader(443, 1, flags=TcpFlags.SYN)),
        CapturedPacket(4.0, IPv4Header(1, 2, IPProto.ICMP), IcmpHeader(0)),
        CapturedPacket(5.0, IPv4Header(1, 2, proto=47), None, b"gre"),
    ]
    return packets


def test_classifier_counts_sum_to_total():
    classifier = TrafficClassifier()
    packets = _mixed_packets()
    for packet in packets:
        classifier.classify(packet)
    assert sum(classifier.counters.values()) == len(packets)


def test_every_packet_gets_exactly_one_class():
    classifier = TrafficClassifier()
    for packet in _mixed_packets():
        result = classifier.classify(packet)
        assert isinstance(result.packet_class, PacketClass)


# -- sessionizer vs a reference implementation ---------------------------------


@settings(max_examples=100)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=3),       # source
            st.floats(min_value=0.01, max_value=900.0),  # gap to next packet
        ),
        min_size=1,
        max_size=60,
    ),
    st.floats(min_value=10.0, max_value=600.0),
)
def test_sessionizer_matches_gap_rule(events, timeout):
    # build a global timeline: per-source monotone timestamps
    timeline = []
    clocks = {1: 0.0, 2: 0.0, 3: 0.0}
    for source, gap in events:
        clocks[source] += gap
        timeline.append((clocks[source], source))
    timeline.sort()

    sessionizer = Sessionizer("quic-response", timeout=timeout)
    sweep = TimeoutSweep()
    classifier = TrafficClassifier(dissect_payloads=False)
    for ts, source in timeline:
        packet = CapturedPacket(
            ts, IPv4Header(source, 9, IPProto.UDP), UdpHeader(443, 5), b""
        )
        sessionizer.add(classifier.classify(packet))
        sweep.observe(source, ts)
    sessionizer.flush()

    # reference: one session per source + one per gap > timeout
    per_source = {}
    for ts, source in timeline:
        per_source.setdefault(source, []).append(ts)
    expected = 0
    for stamps in per_source.values():
        expected += 1 + sum(
            1 for a, b in zip(stamps, stamps[1:]) if b - a > timeout
        )
    assert len(sessionizer.closed) == expected
    assert sweep.sessions_at(timeout) == expected


@settings(max_examples=50)
@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=2, max_size=50))
def test_session_packet_conservation(timestamps):
    timestamps = sorted(timestamps)
    sessionizer = Sessionizer("quic-response", timeout=100.0)
    classifier = TrafficClassifier(dissect_payloads=False)
    for ts in timestamps:
        packet = CapturedPacket(
            ts, IPv4Header(7, 9, IPProto.UDP), UdpHeader(443, 5), b""
        )
        sessionizer.add(classifier.classify(packet))
    sessionizer.flush()
    assert sum(s.packet_count for s in sessionizer.closed) == len(timestamps)
    for session in sessionizer.closed:
        assert session.duration >= 0
        assert session.max_pps >= 0


# -- pipeline failure injection ---------------------------------------------


def _corrupting_stream(scenario, every=37):
    """Yield scenario packets, corrupting the payload of every N-th."""
    for i, packet in enumerate(scenario.packets()):
        if i % every == 0 and packet.payload:
            corrupted = bytearray(packet.payload)
            corrupted[len(corrupted) // 2] ^= 0xFF
            packet = CapturedPacket(
                packet.timestamp, packet.ip, packet.transport, bytes(corrupted)
            )
        yield packet


def test_pipeline_survives_corrupted_payloads():
    scenario = Scenario(
        ScenarioConfig(seed=5, duration=1 * HOUR, research_sample=1 / 2048)
    )
    pipeline = QuicsandPipeline(
        registry=scenario.internet.registry,
        census=scenario.internet.census,
        config=AnalysisConfig(retry_probe_count=0),
    )
    result = pipeline.process(_corrupting_stream(scenario))
    assert result.total_packets > 0
    # corrupted packets may fall out of QUIC classification but the
    # pipeline completes and still detects attacks
    assert result.quic_detector is not None


def test_pipeline_handles_empty_stream():
    pipeline = QuicsandPipeline(config=AnalysisConfig(retry_probe_count=0))
    result = pipeline.process(iter([]))
    assert result.total_packets == 0
    assert result.quic_attacks == []
    assert result.request_share == 0.0
    assert result.message_type_shares() == {}


def test_pipeline_single_packet_stream():
    pipeline = QuicsandPipeline(config=AnalysisConfig(retry_probe_count=0))
    packet = CapturedPacket(
        100.0, IPv4Header(1, 2, IPProto.UDP), UdpHeader(443, 9), b"\x01"
    )
    result = pipeline.process(iter([packet]))
    assert result.total_packets == 1
    assert result.dissection_failures == 1


def test_pipeline_deterministic_over_same_stream():
    scenario = ScenarioConfig(seed=6, duration=1 * HOUR, research_sample=1 / 2048)

    def run():
        s = Scenario(scenario)
        pipeline = QuicsandPipeline(
            registry=s.internet.registry,
            census=s.internet.census,
            config=AnalysisConfig(retry_probe_count=0),
        )
        return pipeline.process(s.packets())

    a, b = run(), run()
    assert a.total_packets == b.total_packets
    assert len(a.quic_attacks) == len(b.quic_attacks)
    assert a.class_counts == b.class_counts
    assert a.multivector.category_shares() == b.multivector.category_shares()
