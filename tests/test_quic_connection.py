"""End-to-end handshake tests: the datagram trains of Figure 1 / Section 6."""

import pytest

from repro.util.rng import SeededRng
from repro.quic.connection import (
    AMPLIFICATION_LIMIT,
    ClientConnection,
    ServerConnection,
)
from repro.quic.header import LongHeader, PacketType, RetryPacket, VersionNegotiationPacket
from repro.quic.packet import MIN_INITIAL_DATAGRAM, split_datagram
from repro.quic.versions import DRAFT_29, MVFST_27, QUIC_V1


@pytest.fixture
def rng():
    return SeededRng(20210401)


def _run_handshake(client, server, max_rounds=6):
    """Ferry datagrams until quiescence; returns all server datagrams."""
    server_datagrams = []
    pending = [client.initial_datagram()]
    for _ in range(max_rounds):
        if not pending:
            break
        next_pending = []
        for datagram in pending:
            for response in server.handle_datagram(datagram, 0x01020304, 44444, now=10.0):
                server_datagrams.append(response)
                for reply in client.handle_datagram(response.data):
                    next_pending.append(reply.data)
        pending = next_pending
    return server_datagrams


def test_typical_1rtt_handshake_completes(rng):
    client = ClientConnection(rng.child("c"))
    server = ServerConnection(rng.child("s"))
    _run_handshake(client, server)
    assert client.result().completed
    assert server.stats["handshakes"] == 1
    assert list(server.connections.values())[0]["established"]


def test_client_initial_is_padded_to_1200(rng):
    client = ClientConnection(rng.child("c"))
    assert len(client.initial_datagram()) == MIN_INITIAL_DATAGRAM


def test_server_flight_is_four_datagrams_with_keepalives(rng):
    """Paper Section 6: each Initial elicits four response datagrams."""
    client = ClientConnection(rng.child("c"))
    server = ServerConnection(rng.child("s"), keepalive_pings=2)
    responses = server.handle_datagram(client.initial_datagram(), 1, 2, now=0.0)
    assert len(responses) == 4
    # Datagram 1 coalesces Initial + Handshake; datagram 2 is Handshake-only.
    types_1 = [v.packet_type for v in split_datagram(responses[0].data)]
    types_2 = [v.packet_type for v in split_datagram(responses[1].data)]
    assert types_1 == [PacketType.INITIAL, PacketType.HANDSHAKE]
    assert types_2 == [PacketType.HANDSHAKE]
    # Keep-alive PINGs arrive after a delay.
    assert responses[2].delay > 0 and responses[3].delay > responses[2].delay


def test_message_type_ratio_matches_paper(rng):
    """One Initial vs two Handshake packets per default response train:
    the one-third/two-thirds ratio the paper derives in Section 6."""
    client = ClientConnection(rng.child("c"))
    server = ServerConnection(rng.child("s"))
    responses = server.handle_datagram(client.initial_datagram(), 1, 2, now=0.0)
    assert len(responses) == 2
    views = [v for r in responses for v in split_datagram(r.data)]
    initials = sum(1 for v in views if v.packet_type is PacketType.INITIAL)
    handshakes = sum(1 for v in views if v.packet_type is PacketType.HANDSHAKE)
    assert initials == 1
    assert handshakes == 2


def test_backscatter_initial_has_zero_length_dcid(rng):
    """Paper Section 5.2 validity check: DCID length zero in backscatter."""
    client = ClientConnection(rng.child("c"))
    server = ServerConnection(rng.child("s"), keepalive_pings=2)
    responses = server.handle_datagram(client.initial_datagram(), 1, 2, now=0.0)
    for response in responses:
        for view in split_datagram(response.data):
            assert isinstance(view, LongHeader)
            assert view.dcid == b""
            assert len(view.scid) == 8


def test_server_initial_contains_no_plain_client_hello(rng):
    """Backscatter Initials must not contain an unencrypted ClientHello."""
    from repro.quic.tls import looks_like_client_hello

    client = ClientConnection(rng.child("c"))
    server = ServerConnection(rng.child("s"))
    responses = server.handle_datagram(client.initial_datagram(), 1, 2, now=0.0)
    raw = responses[0].data
    for start in range(len(raw) - 4):
        assert not looks_like_client_hello(raw[start:])


def test_anti_amplification_limit_respected(rng):
    client = ClientConnection(rng.child("c"))
    server = ServerConnection(rng.child("s"), cert_chain_len=3000)
    initial = client.initial_datagram()
    responses = server.handle_datagram(initial, 1, 2, now=0.0)
    total = sum(len(r.data) for r in responses)
    assert total <= AMPLIFICATION_LIMIT * len(initial)


def test_retry_flow(rng):
    client = ClientConnection(rng.child("c"))
    server = ServerConnection(rng.child("s"), retry_enabled=True)
    first = server.handle_datagram(client.initial_datagram(), 7, 8, now=1.0)
    assert len(first) == 1
    assert isinstance(split_datagram(first[0].data)[0], RetryPacket)
    # Token-bearing Initial gets the full flight.
    retry_reply = client.handle_datagram(first[0].data)
    assert len(retry_reply) == 1
    second = server.handle_datagram(retry_reply[0].data, 7, 8, now=1.1)
    assert len(second) == 2
    assert server.stats["retries_sent"] == 1
    assert client.retries_seen == 1


def test_retry_with_spoofed_address_gets_nothing(rng):
    """The RETRY defense: a token echoed from the wrong address is dropped."""
    client = ClientConnection(rng.child("c"))
    server = ServerConnection(rng.child("s"), retry_enabled=True)
    first = server.handle_datagram(client.initial_datagram(), 7, 8, now=1.0)
    retry_reply = client.handle_datagram(first[0].data)
    # Replay the tokened Initial from a different source address.
    responses = server.handle_datagram(retry_reply[0].data, 9999, 8, now=1.1)
    assert responses == []


def test_second_retry_ignored_by_client(rng):
    client = ClientConnection(rng.child("c"))
    server = ServerConnection(rng.child("s"), retry_enabled=True)
    first = server.handle_datagram(client.initial_datagram(), 7, 8, now=1.0)
    client.handle_datagram(first[0].data)
    again = client.handle_datagram(first[0].data)
    assert again == []


def test_version_negotiation_flow(rng):
    client = ClientConnection(
        rng.child("c"), version=DRAFT_29, supported_versions=(DRAFT_29, QUIC_V1)
    )
    server = ServerConnection(rng.child("s"), supported_versions=(QUIC_V1,))
    first = server.handle_datagram(client.initial_datagram(), 1, 2, now=0.0)
    assert isinstance(split_datagram(first[0].data)[0], VersionNegotiationPacket)
    replies = client.handle_datagram(first[0].data)
    assert client.version is QUIC_V1
    assert len(replies) == 1
    assert server.stats["vn_sent"] == 1


def test_version_negotiation_no_common_version_fails(rng):
    client = ClientConnection(
        rng.child("c"), version=DRAFT_29, supported_versions=(DRAFT_29,)
    )
    server = ServerConnection(rng.child("s"), supported_versions=(QUIC_V1,))
    first = server.handle_datagram(client.initial_datagram(), 1, 2, now=0.0)
    replies = client.handle_datagram(first[0].data)
    assert replies == []
    assert client.state == "failed"


def test_mvfst_handshake(rng):
    client = ClientConnection(
        rng.child("c"), version=MVFST_27, supported_versions=(MVFST_27,)
    )
    server = ServerConnection(rng.child("s"), supported_versions=(MVFST_27, QUIC_V1))
    _run_handshake(client, server)
    assert client.result().completed
    assert client.result().version is MVFST_27


def test_garbage_initial_dropped(rng):
    server = ServerConnection(rng.child("s"))
    # Valid header but payload keyed with a mismatched DCID: decrypt fails.
    client = ClientConnection(rng.child("c"))
    datagram = bytearray(client.initial_datagram())
    datagram[600] ^= 0xFF  # corrupt ciphertext
    assert server.handle_datagram(bytes(datagram), 1, 2, now=0.0) == []


def test_server_tracks_connection_state_per_odcid(rng):
    server = ServerConnection(rng.child("s"))
    for i in range(5):
        client = ClientConnection(rng.child(f"c{i}"))
        server.handle_datagram(client.initial_datagram(), i, 1000 + i, now=0.0)
    assert len(server.connections) == 5
    assert server.stats["handshakes"] == 5
