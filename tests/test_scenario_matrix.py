"""The scenario equivalence matrix: every registered scenario, the
full four-way battery.

Auto-discovers :data:`repro.telescope.presets.SCENARIOS` — the four
IBR classes in isolation plus every adversarial workload — and pins,
for each one:

- fast lane == rich lane (``AnalysisConfig.fast_lane``);
- gen-lane synthesis == rich synthesis (fused
  ``process_record_batches`` feed, plus sharded ``records(workers=2)``
  against serial records);
- serial == workers 2–4 (shared-memory ring transport);
- batch == streaming-exact ``PipelineResult``s, bit for bit.

Any future scenario registered in the presets module gets this battery
for free; a scenario whose generators drift between their rich and
record twins, or whose record units mis-order under the parallel
merge, fails here before it ever reaches a golden report.
"""

import dataclasses
from types import SimpleNamespace

import pytest

from repro.core import QuicsandPipeline
from repro.core.pipeline import AnalysisConfig
from repro.core.report import build_report
from repro.telescope import Scenario
from repro.telescope.presets import SCENARIOS, get_scenario, scenario_names

#: result fields compared by identity-only helpers (no value equality);
#: everything they influence is covered by the compared fields and the
#: rendered report (mirrors tests/test_lane_equivalence.py).
_IDENTITY_FIELDS = {"config", "timeout_sweep", "quic_detector", "common_detector"}


def make_pipeline(scenario, **config_kw):
    return QuicsandPipeline(
        registry=scenario.internet.registry,
        census=scenario.internet.census,
        greynoise=scenario.internet.greynoise,
        config=AnalysisConfig(**config_kw),
    )


def run(scenario, packets, **config_kw):
    return make_pipeline(scenario, **config_kw).process(iter(packets))


def assert_identical(reference, other, scenario, label):
    for field in dataclasses.fields(reference):
        if field.name in _IDENTITY_FIELDS:
            continue
        assert getattr(reference, field.name) == getattr(
            other, field.name
        ), (label, field.name)
    assert reference.timeout_sweep.sweep(range(1, 61)) == other.timeout_sweep.sweep(
        range(1, 61)
    ), label
    weight = scenario.truth.research_weight
    assert build_report(reference, research_weight=weight) == build_report(
        other, research_weight=weight
    ), label


@pytest.fixture(scope="module", params=scenario_names())
def case(request):
    """One registered scenario: its capture and the fast-lane reference.

    Module-scoped per param, so the (expensive) generation and the
    reference analysis run once per scenario, not once per test.
    """
    name = request.param
    preset = get_scenario(name)
    config = preset.config()
    scenario = Scenario(config)
    packets = list(scenario.packets())
    reference = run(scenario, packets, fast_lane=True)
    return SimpleNamespace(
        name=name,
        preset=preset,
        config=config,
        scenario=scenario,
        packets=packets,
        reference=reference,
    )


def test_registry_covers_ibr_and_adversarial():
    """The matrix's discovery surface: all four pre-existing IBR classes
    and at least five adversarial scenarios are registered."""
    names = scenario_names()
    assert len(names) == len(set(names))
    ibr = [n for n in names if not SCENARIOS[n].adversarial]
    adversarial = [n for n in names if SCENARIOS[n].adversarial]
    assert len(ibr) >= 4
    assert len(adversarial) >= 5


def test_scenario_generates_traffic(case):
    """Every registered scenario actually reaches the telescope."""
    assert case.packets, f"{case.name} produced an empty capture"
    timestamps = [p.timestamp for p in case.packets]
    assert timestamps == sorted(timestamps), f"{case.name} capture unsorted"


def test_fast_lane_vs_rich_lane(case):
    rich = run(case.scenario, case.packets, fast_lane=False)
    assert_identical(case.reference, rich, case.scenario, f"{case.name}:rich")


def test_gen_lane_vs_rich_synthesis(case):
    """The generation fast lane reproduces the rich capture: the fused
    record-batch feed analyzes identically, and sharded generation
    yields the serial record stream bit for bit."""
    fused = make_pipeline(case.scenario).process_record_batches(
        Scenario(case.config).lane_batches()
    )
    assert_identical(case.reference, fused, case.scenario, f"{case.name}:fused")

    serial = list(Scenario(case.config).records())
    sharded = list(Scenario(case.config).records(workers=2))
    assert serial == sharded, f"{case.name}: gen-workers=2 diverged"


def test_serial_vs_workers(case):
    for workers in (2, 3, 4):
        parallel = run(
            case.scenario, case.packets, fast_lane=True, workers=workers
        )
        assert_identical(
            case.reference,
            parallel,
            case.scenario,
            f"{case.name}:workers={workers}",
        )


def test_batch_vs_streaming_exact(case):
    from repro.stream import StreamAnalyzer
    from repro.util.batching import batched

    analyzer = StreamAnalyzer(
        registry=case.scenario.internet.registry,
        census=case.scenario.internet.census,
        greynoise=case.scenario.internet.greynoise,
        config=AnalysisConfig(fast_lane=True),
    )
    for _ in analyzer.events(batched(iter(case.packets), 512)):
        pass
    streamed = analyzer.result()
    assert_identical(
        case.reference, streamed, case.scenario, f"{case.name}:stream"
    )
