"""Tests for the AS registry, census, GreyNoise platform and topology."""

import pytest

from repro.net.addresses import IPv4Network, parse_ipv4
from repro.util.rng import SeededRng
from repro.internet import (
    ActiveScanCensus,
    AsRegistry,
    GreyNoisePlatform,
    GreyNoiseTag,
    InternetModel,
    NetworkType,
    QuicServerRecord,
    TopologyConfig,
)


# -- AS registry -----------------------------------------------------------


def test_registry_register_and_lookup():
    registry = AsRegistry()
    registry.register(
        65001,
        "Example-Eyeball",
        NetworkType.EYEBALL,
        country="US",
        prefixes=[IPv4Network.from_cidr("100.64.0.0/16")],
    )
    system = registry.lookup(parse_ipv4("100.64.3.4"))
    assert system is not None
    assert system.asn == 65001
    assert registry.network_type_of(parse_ipv4("100.64.3.4")) is NetworkType.EYEBALL


def test_registry_unrouted_is_unknown():
    registry = AsRegistry()
    assert registry.lookup(parse_ipv4("1.1.1.1")) is None
    assert registry.network_type_of(parse_ipv4("1.1.1.1")) is NetworkType.UNKNOWN


def test_registry_announce_requires_registration():
    registry = AsRegistry()
    with pytest.raises(KeyError):
        registry.announce(65001, IPv4Network.from_cidr("10.0.0.0/8"))


def test_registry_duplicate_prefix_rejected():
    registry = AsRegistry()
    net = IPv4Network.from_cidr("10.0.0.0/8")
    registry.register(65001, "A", NetworkType.CONTENT, prefixes=[net])
    registry.register(65002, "B", NetworkType.CONTENT)
    with pytest.raises(ValueError):
        registry.announce(65002, net)


def test_registry_systems_of_type():
    registry = AsRegistry()
    registry.register(1, "a", NetworkType.CONTENT)
    registry.register(2, "b", NetworkType.EYEBALL)
    registry.register(3, "c", NetworkType.CONTENT)
    assert {s.asn for s in registry.systems_of_type(NetworkType.CONTENT)} == {1, 3}


# -- census ------------------------------------------------------------


def _record(ip="9.9.9.9", provider="Google"):
    return QuicServerRecord(
        address=parse_ipv4(ip), asn=15169, provider=provider, versions=("draft-29",)
    )


def test_census_membership():
    census = ActiveScanCensus([_record()])
    assert census.is_known_quic_server(parse_ipv4("9.9.9.9"))
    assert not census.is_known_quic_server(parse_ipv4("9.9.9.8"))
    assert parse_ipv4("9.9.9.9") in census


def test_census_by_provider_and_counts():
    census = ActiveScanCensus(
        [_record("1.1.1.1", "Google"), _record("2.2.2.2", "Facebook"), _record("3.3.3.3", "Google")]
    )
    assert len(census.by_provider("Google")) == 2
    assert census.providers() == {"Google": 2, "Facebook": 1}


# -- greynoise ------------------------------------------------------------


def test_greynoise_observe_and_query():
    platform = GreyNoisePlatform()
    platform.observe(1234, [GreyNoiseTag.MIRAI], actor="botnet", timestamp=5.0)
    record = platform.query(1234)
    assert record.is_malicious
    assert not record.is_benign
    assert platform.query(9999) is None


def test_greynoise_merge_tags():
    platform = GreyNoisePlatform()
    platform.observe(1, [GreyNoiseTag.SPOOFABLE], timestamp=1.0)
    platform.observe(1, [GreyNoiseTag.BRUTEFORCER], timestamp=9.0)
    record = platform.query(1)
    assert GreyNoiseTag.SPOOFABLE in record.tags
    assert record.is_malicious
    assert record.first_seen == 1.0
    assert record.last_seen == 9.0


def test_greynoise_classify_sources():
    platform = GreyNoisePlatform()
    platform.observe(1, [GreyNoiseTag.BENIGN_SCANNER])
    platform.observe(2, [GreyNoiseTag.MIRAI])
    platform.observe(3, [GreyNoiseTag.SPOOFABLE])
    summary = platform.classify_sources([1, 2, 3, 4])
    assert summary == {"benign": 1, "malicious": 1, "unknown": 1, "unseen": 1}


# -- topology ------------------------------------------------------------


@pytest.fixture(scope="module")
def internet():
    return InternetModel(SeededRng(99))


def test_topology_is_deterministic():
    a = InternetModel(SeededRng(5))
    b = InternetModel(SeededRng(5))
    assert [r.address for r in a.census.all_records()] == [
        r.address for r in b.census.all_records()
    ]


def test_topology_provider_populations(internet):
    config = TopologyConfig()
    assert len(internet.census.by_provider("Google")) == config.google_servers
    assert len(internet.census.by_provider("Facebook")) == config.facebook_servers


def test_topology_no_prefix_overlaps_telescope(internet):
    telescope = internet.telescope_net
    for system in internet.registry:
        for prefix in system.prefixes:
            assert not (
                prefix.first <= telescope.last and telescope.first <= prefix.last
            )


def test_topology_servers_resolve_to_content_type(internet):
    for record in internet.census.all_records():
        assert internet.registry.network_type_of(record.address) is NetworkType.CONTENT


def test_topology_bots_live_in_eyeball_networks(internet):
    for bot in internet.bot_hosts:
        assert internet.registry.network_type_of(bot.address) is NetworkType.EYEBALL


def test_topology_research_scanners_in_education(internet):
    assert len(internet.research_scanners) == 2
    for scanner in internet.research_scanners:
        assert (
            internet.registry.network_type_of(scanner.address)
            is NetworkType.EDUCATION
        )


def test_topology_tagged_bot_fraction_small(internet):
    tagged = sum(1 for b in internet.bot_hosts if b.tags)
    assert 0 < tagged < len(internet.bot_hosts) * 0.1


def test_topology_retry_supported_not_sent(internet):
    for record in internet.census.all_records():
        assert record.supports_retry
        assert not record.sends_retry


def test_topology_version_mixes(internet):
    google = {r.versions[0] for r in internet.census.by_provider("Google")}
    facebook = {r.versions[0] for r in internet.census.by_provider("Facebook")}
    assert "draft-29" in google
    assert "mvfst-draft-27" in facebook


def test_random_unrouted_address(internet):
    for _ in range(20):
        address = internet.random_unrouted_address()
        assert internet.registry.lookup(address) is None
        assert address not in internet.telescope_net


def test_random_telescope_address(internet):
    for _ in range(20):
        assert internet.random_telescope_address() in internet.telescope_net


def test_provider_lookup(internet):
    assert internet.provider("Google").name == "Google"
    with pytest.raises(KeyError):
        internet.provider("Nonexistent")
