"""Seeded property suite for the wire codecs.

Randomized roundtrip/invariant checks over the varint codec and the
IPv4/UDP/TCP/ICMP header serializers, driven by
:class:`~repro.util.rng.SeededRng` rather than an external property
framework, so failures replay exactly and tier-1 stays dependency-free.

Properties pinned here:

- **encode → decode → encode identity** — serializing, parsing, and
  re-serializing any generated header yields byte-identical wire data;
- **field fidelity** — every parsed field equals what was encoded;
- **checksum validity** — freshly packed headers verify under the
  RFC 1071 one's-complement sum (fold to zero, pseudo-header included
  for TCP/UDP);
- **checksum sensitivity** — any single-bit flip in a packed datagram
  is caught: parsing rejects it or the checksum no longer verifies;
- **varint totality** — every 1/2/4/8-byte buffer with a valid length
  prefix decodes, re-encodes to the same bytes at the same width, and
  every strict prefix of a varint raises ``VarintError``.
"""

import os

from repro.net.checksum import internet_checksum, pseudo_header
from repro.net.icmp import IcmpHeader, IcmpType
from repro.net.ipv4 import IPProto, IPv4Header
from repro.net.tcp import TcpFlags, TcpHeader
from repro.net.udp import UdpHeader
from repro.util.rng import SeededRng
from repro.util.varint import (
    MAX_VARINT,
    VarintError,
    decode_varint,
    encode_varint,
    varint_length,
)

ITERS = int(os.environ.get("REPRO_FUZZ_ITERS", "300"))

_WIDTH_RANGES = {1: (0, 63), 2: (64, 16383), 4: (16384, 1073741823), 8: (1073741824, MAX_VARINT)}


def random_varint_value(rng):
    low, high = _WIDTH_RANGES[rng.choice((1, 2, 4, 8))]
    return rng.randint(low, high)


# -- varint ------------------------------------------------------------------


def test_varint_roundtrip_and_minimal_length():
    rng = SeededRng(0x9A01, "prop-varint")
    for _ in range(ITERS):
        value = random_varint_value(rng)
        wire = encode_varint(value)
        assert len(wire) == varint_length(value)
        decoded, end = decode_varint(wire)
        assert (decoded, end) == (value, len(wire))
        assert encode_varint(decoded) == wire


def test_varint_forced_widths_decode_identically():
    rng = SeededRng(0x9A02, "prop-varint-wide")
    for _ in range(ITERS):
        value = random_varint_value(rng)
        for width in (1, 2, 4, 8):
            if width < varint_length(value):
                continue
            wire = encode_varint(value, width)
            assert len(wire) == width
            assert decode_varint(wire) == (value, width)


def test_varint_bytes_value_bytes_identity():
    """Any buffer with a coherent length prefix is a fixed point of
    decode→encode at its own width — including non-minimal encodings."""
    rng = SeededRng(0x9A03, "prop-varint-raw")
    for _ in range(ITERS):
        width = rng.choice((1, 2, 4, 8))
        raw = bytearray(rng.randbytes(width))
        raw[0] = (raw[0] & 0x3F) | ({1: 0, 2: 1, 4: 2, 8: 3}[width] << 6)
        wire = bytes(raw)
        value, end = decode_varint(wire)
        assert end == width
        assert encode_varint(value, width) == wire


def test_varint_truncation_always_raises():
    rng = SeededRng(0x9A04, "prop-varint-trunc")
    for _ in range(ITERS):
        wire = encode_varint(random_varint_value(rng))
        for cut in range(len(wire)):
            try:
                decode_varint(wire[:cut])
            except VarintError:
                continue
            raise AssertionError(f"prefix {wire[:cut].hex()!r} decoded")


# -- header generators -------------------------------------------------------


def random_ipv4(rng):
    return IPv4Header(
        src=rng.randint(0, 0xFFFFFFFF),
        dst=rng.randint(0, 0xFFFFFFFF),
        proto=rng.choice((IPProto.ICMP, IPProto.TCP, IPProto.UDP)),
        identification=rng.randint(0, 0xFFFF),
        ttl=rng.randint(1, 255),
        flags_fragment=rng.choice((0x0000, 0x4000)),
        tos=rng.randint(0, 255),
    )


def random_udp(rng):
    return UdpHeader(
        src_port=rng.randint(0, 0xFFFF), dst_port=rng.randint(0, 0xFFFF)
    )


def random_tcp(rng):
    flags = rng.choice(
        (
            TcpFlags.SYN,
            TcpFlags.SYN | TcpFlags.ACK,
            TcpFlags.RST,
            TcpFlags.RST | TcpFlags.ACK,
            TcpFlags.FIN | TcpFlags.ACK,
            TcpFlags.PSH | TcpFlags.ACK,
        )
    )
    return TcpHeader(
        src_port=rng.randint(0, 0xFFFF),
        dst_port=rng.randint(0, 0xFFFF),
        seq=rng.randint(0, 0xFFFFFFFF),
        ack=rng.randint(0, 0xFFFFFFFF),
        flags=flags,
        window=rng.randint(0, 0xFFFF),
    )


def random_icmp(rng):
    return IcmpHeader(
        icmp_type=rng.choice(
            (
                IcmpType.ECHO_REPLY,
                IcmpType.DEST_UNREACHABLE,
                IcmpType.ECHO_REQUEST,
                IcmpType.TIME_EXCEEDED,
            )
        ),
        code=rng.randint(0, 15),
        identifier=rng.randint(0, 0xFFFF),
        sequence=rng.randint(0, 0xFFFF),
    )


# -- IPv4 --------------------------------------------------------------------


def test_ipv4_roundtrip_identity_and_checksum():
    rng = SeededRng(0x9A10, "prop-ipv4")
    for _ in range(ITERS):
        header = random_ipv4(rng)
        payload = rng.randbytes(rng.randint(0, 64))
        wire = header.pack(len(payload))
        # a valid IPv4 header folds to zero with its checksum in place
        assert internet_checksum(wire) == 0
        parsed, parsed_payload = IPv4Header.parse(wire + payload)
        assert parsed_payload == payload
        assert (parsed.src, parsed.dst, parsed.proto) == (
            header.src,
            header.dst,
            header.proto,
        )
        assert parsed.ttl == header.ttl
        assert parsed.identification == header.identification
        assert parsed.flags_fragment == header.flags_fragment
        assert parsed.tos == header.tos
        assert parsed.checksum == header.checksum
        assert parsed.pack(len(payload)) == wire


def test_ipv4_single_bit_flip_detected():
    rng = SeededRng(0x9A11, "prop-ipv4-flip")
    for _ in range(ITERS):
        wire = bytearray(random_ipv4(rng).pack(0))
        index = rng.randint(0, len(wire) - 1)
        wire[index] ^= 1 << rng.randint(0, 7)
        try:
            IPv4Header.parse(bytes(wire))
        except ValueError:
            continue  # version/IHL damage: rejected outright
        assert internet_checksum(bytes(wire)) != 0, wire.hex()


# -- UDP ---------------------------------------------------------------------


def test_udp_roundtrip_identity_and_checksum():
    rng = SeededRng(0x9A20, "prop-udp")
    for _ in range(ITERS):
        header = random_udp(rng)
        payload = rng.randbytes(rng.randint(0, 128))
        src_ip = rng.randint(0, 0xFFFFFFFF)
        dst_ip = rng.randint(0, 0xFFFFFFFF)
        wire = header.pack(payload, src_ip, dst_ip)
        pseudo = pseudo_header(src_ip, dst_ip, IPProto.UDP, len(wire))
        assert internet_checksum(pseudo + wire) == 0
        parsed, parsed_payload = UdpHeader.parse(wire)
        assert parsed_payload == payload
        assert parsed == header  # length/checksum were filled by pack
        assert parsed.length == 8 + len(payload)
        assert parsed.pack(parsed_payload, src_ip, dst_ip) == wire


def test_udp_single_bit_flip_detected():
    rng = SeededRng(0x9A21, "prop-udp-flip")
    for _ in range(ITERS):
        src_ip = rng.randint(0, 0xFFFFFFFF)
        dst_ip = rng.randint(0, 0xFFFFFFFF)
        wire = bytearray(
            random_udp(rng).pack(rng.randbytes(rng.randint(1, 32)), src_ip, dst_ip)
        )
        index = rng.randint(0, len(wire) - 1)
        wire[index] ^= 1 << rng.randint(0, 7)
        # verify against the true datagram length, like an IP stack would
        pseudo = pseudo_header(src_ip, dst_ip, IPProto.UDP, len(wire))
        assert internet_checksum(pseudo + bytes(wire)) != 0, wire.hex()


# -- TCP ---------------------------------------------------------------------


def test_tcp_roundtrip_identity_and_checksum():
    rng = SeededRng(0x9A30, "prop-tcp")
    for _ in range(ITERS):
        header = random_tcp(rng)
        payload = rng.randbytes(rng.randint(0, 64))
        src_ip = rng.randint(0, 0xFFFFFFFF)
        dst_ip = rng.randint(0, 0xFFFFFFFF)
        wire = header.pack(payload, src_ip, dst_ip)
        pseudo = pseudo_header(src_ip, dst_ip, IPProto.TCP, len(wire))
        assert internet_checksum(pseudo + wire) == 0
        parsed, parsed_payload = TcpHeader.parse(wire)
        assert parsed_payload == payload
        assert parsed == header
        assert parsed.is_syn_ack == header.is_syn_ack
        assert parsed.is_rst == header.is_rst
        assert parsed.pack(parsed_payload, src_ip, dst_ip) == wire


def test_tcp_single_bit_flip_detected():
    rng = SeededRng(0x9A31, "prop-tcp-flip")
    for _ in range(ITERS):
        src_ip = rng.randint(0, 0xFFFFFFFF)
        dst_ip = rng.randint(0, 0xFFFFFFFF)
        wire = bytearray(random_tcp(rng).pack(b"", src_ip, dst_ip))
        index = rng.randint(0, len(wire) - 1)
        wire[index] ^= 1 << rng.randint(0, 7)
        pseudo = pseudo_header(src_ip, dst_ip, IPProto.TCP, len(wire))
        try:
            TcpHeader.parse(bytes(wire))
        except ValueError:
            continue  # data-offset damage: rejected outright
        assert internet_checksum(pseudo + bytes(wire)) != 0, wire.hex()


# -- ICMP --------------------------------------------------------------------


def test_icmp_roundtrip_identity_and_checksum():
    rng = SeededRng(0x9A40, "prop-icmp")
    for _ in range(ITERS):
        header = random_icmp(rng)
        payload = rng.randbytes(rng.randint(0, 64))
        wire = header.pack(payload)
        assert internet_checksum(wire) == 0
        parsed, parsed_payload = IcmpHeader.parse(wire)
        assert parsed_payload == payload
        assert parsed == header
        assert parsed.is_backscatter == header.is_backscatter
        assert parsed.pack(parsed_payload) == wire


def test_icmp_single_bit_flip_detected():
    rng = SeededRng(0x9A41, "prop-icmp-flip")
    for _ in range(ITERS):
        wire = bytearray(random_icmp(rng).pack(rng.randbytes(rng.randint(0, 16))))
        index = rng.randint(0, len(wire) - 1)
        wire[index] ^= 1 << rng.randint(0, 7)
        assert internet_checksum(bytes(wire)) != 0, wire.hex()
