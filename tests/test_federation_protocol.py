"""Federation wire protocol and transports: framing, damage, spool,
sockets.

The contract under test is the lenient skip-and-count one the pcap
reader established: a receiver **never raises** on wire damage — bad
magic resyncs, bad checksums skip, truncation counts — and every
recoverable corruption costs exactly one ``corrupt_frames`` tick.
"""

import socket
import threading

import pytest

from repro.faults import corrupt_frame_bytes
from repro.federate.protocol import (
    BYE,
    FINAL_STATE,
    FRAME_KINDS,
    HEADER_SIZE,
    HELLO,
    MAGIC,
    PROTOCOL_VERSION,
    SCHEMA_VERSION,
    STATE,
    Frame,
    FrameDecoder,
    ProtocolError,
    bye_frame,
    decode_frames,
    encode_frame,
    hello_frame,
    pickle_frame,
)
from repro.federate.transport import (
    FederationListener,
    SocketSender,
    SpoolReader,
    SpoolWriter,
    TransportError,
    connect_with_retry,
)
from repro.util.rng import SeededRng


def sample_frames():
    return [
        hello_frame("v0", "44.0.0.0/10", "exact", 0),
        encode_frame(STATE, b"interim" * 40, 1),
        pickle_frame(FINAL_STATE, {"total": 123}, 2),
        bye_frame(3, 123, 3),
    ]


# -- framing ---------------------------------------------------------------


def test_roundtrip_all_kinds():
    for seq, kind in enumerate(FRAME_KINDS):
        frames, corrupt = decode_frames(encode_frame(kind, b"payload", seq))
        assert corrupt == 0
        assert frames == [Frame(kind=kind, seq=seq, payload=b"payload")]


def test_roundtrip_stream_and_json_payloads():
    frames, corrupt = decode_frames(b"".join(sample_frames()))
    assert corrupt == 0
    assert [f.kind for f in frames] == [HELLO, STATE, FINAL_STATE, BYE]
    hello = frames[0].json()
    assert hello == {
        "schema": SCHEMA_VERSION,
        "vantage": "v0",
        "prefix": "44.0.0.0/10",
        "mode": "exact",
    }
    assert frames[2].unpickle() == {"total": 123}
    assert frames[3].json() == {"frames": 3, "packets": 123}


def test_encode_rejects_unknown_kind():
    with pytest.raises(ProtocolError):
        encode_frame("no-such-kind", b"")


def test_byte_at_a_time_chunking():
    decoder = FrameDecoder()
    out = []
    for blob in sample_frames():
        for i in range(len(blob)):
            out.extend(decoder.feed(blob[i : i + 1]))
    decoder.finish()
    assert [f.kind for f in out] == [HELLO, STATE, FINAL_STATE, BYE]
    assert decoder.corrupt_frames == 0


# -- damage: count and skip, never raise -----------------------------------


def test_garbage_prefix_resyncs_counting_one():
    frames, corrupt = decode_frames(b"not frames at all" + sample_frames()[0])
    assert [f.kind for f in frames] == [HELLO]
    assert corrupt == 1


def test_garbage_run_chunked_counts_once():
    decoder = FrameDecoder()
    out = []
    for chunk in (b"junk" * 10, b"more junk", sample_frames()[0]):
        out.extend(decoder.feed(chunk))
    decoder.finish()
    assert [f.kind for f in out] == [HELLO]
    assert decoder.corrupt_frames == 1


def test_bad_version_skips_frame():
    blob = bytearray(b"".join(sample_frames()))
    blob[4] = 0xFF  # protocol version of the hello frame
    frames, corrupt = decode_frames(bytes(blob))
    assert [f.kind for f in frames] == [STATE, FINAL_STATE, BYE]
    assert corrupt == 1


def test_bad_checksum_skips_declared_frame():
    first, rest = sample_frames()[0], b"".join(sample_frames()[1:])
    blob = bytearray(first + rest)
    blob[HEADER_SIZE] ^= 0xFF  # first payload byte of hello
    frames, corrupt = decode_frames(bytes(blob))
    assert [f.kind for f in frames] == [STATE, FINAL_STATE, BYE]
    assert corrupt == 1


def test_truncated_tail_counts_one():
    blob = b"".join(sample_frames())
    frames, corrupt = decode_frames(blob[:-5])
    assert [f.kind for f in frames] == [HELLO, STATE, FINAL_STATE]
    assert corrupt == 1


def test_truncated_header_counts_one():
    frames, corrupt = decode_frames(sample_frames()[0][: HEADER_SIZE - 3])
    assert frames == []
    assert corrupt == 1


def test_corrupt_frame_bytes_count_matches_decoder():
    """Every damage corrupt_frame_bytes applies costs exactly one tick."""
    blob = b"".join(sample_frames() * 5)
    damaged, expected = corrupt_frame_bytes(blob, SeededRng(7), rate=0.5)
    assert expected > 0
    frames, corrupt = decode_frames(damaged)
    assert corrupt == expected
    assert len(frames) == 20 - expected


def test_corrupt_frame_bytes_spares_kinds():
    blob = b"".join(sample_frames() * 3)
    damaged, n = corrupt_frame_bytes(
        blob,
        SeededRng(3),
        rate=1.0,
        spare_kinds=(HELLO, FINAL_STATE, BYE),
    )
    assert n == 3  # only the three state frames were eligible
    frames, corrupt = decode_frames(damaged)
    assert corrupt == 3
    assert [f.kind for f in frames] == [HELLO, FINAL_STATE, BYE] * 3


def test_magic_never_raises_fuzz():
    """Arbitrary byte soup through the decoder: no exception, ever."""
    rng = SeededRng(99, "fuzz")
    decoder = FrameDecoder()
    for _ in range(50):
        blob = rng.randbytes(rng.randint(1, 300))
        list(decoder.feed(blob))
    decoder.finish()
    # sanity: the decoder is still usable afterwards
    frames = list(decoder.feed(sample_frames()[0]))
    assert [f.kind for f in frames] == [HELLO]


# -- spool transport -------------------------------------------------------


def test_spool_roundtrip(tmp_path):
    for name in ("v1", "v0"):
        with SpoolWriter(str(tmp_path), name) as writer:
            for blob in sample_frames():
                writer.send(blob)
        assert writer.frames_written == 4
    reader = SpoolReader(str(tmp_path))
    assert reader.stream_names() == ["v0", "v1"]
    streams = dict(reader.streams())
    assert set(streams) == {"v0", "v1"}
    for frames in streams.values():
        assert [f.kind for f in frames] == [HELLO, STATE, FINAL_STATE, BYE]
    assert reader.corrupt_frames == 0


def test_spool_reader_skips_damage(tmp_path):
    with SpoolWriter(str(tmp_path), "damaged") as writer:
        for blob in sample_frames():
            writer.send(blob)
    path = tmp_path / "damaged.qsf"
    blob = bytearray(path.read_bytes())
    blob[4] = 0xFF
    path.write_bytes(bytes(blob))
    reader = SpoolReader(str(tmp_path))
    frames = reader.read_stream("damaged")
    assert [f.kind for f in frames] == [STATE, FINAL_STATE, BYE]
    assert reader.corrupt_frames == 1


def test_spool_reader_missing_directory():
    with pytest.raises(TransportError):
        SpoolReader("/nonexistent/spool/dir").stream_names()


# -- socket transport ------------------------------------------------------


def _listener_or_skip():
    try:
        return FederationListener("127.0.0.1", 0)
    except TransportError as exc:  # pragma: no cover - sandboxed CI
        pytest.skip(f"cannot bind a localhost socket: {exc}")


def test_socket_pair_roundtrip():
    listener = _listener_or_skip()
    with listener:
        received = []

        def serve():
            received.extend(listener.accept_stream())

        thread = threading.Thread(target=serve)
        thread.start()
        sock = connect_with_retry("127.0.0.1", listener.port, attempts=3)
        with SocketSender(sock) as sender:
            for blob in sample_frames():
                sender.send(blob)
        thread.join(timeout=10)
    assert [f.kind for f in received] == [HELLO, STATE, FINAL_STATE, BYE]
    assert listener.corrupt_frames == 0


def test_connect_retry_backoff_then_error():
    # a port nothing listens on: grab one, then close it
    probe = socket.socket()
    try:
        probe.bind(("127.0.0.1", 0))
    except OSError as exc:  # pragma: no cover - sandboxed CI
        pytest.skip(f"cannot bind a localhost socket: {exc}")
    port = probe.getsockname()[1]
    probe.close()
    delays = []
    with pytest.raises(TransportError):
        connect_with_retry(
            "127.0.0.1", port, attempts=4, base_delay=0.01, sleep=delays.append
        )
    # three sleeps between four attempts, exponentially growing jittered
    assert len(delays) == 3
    assert all(d > 0 for d in delays)
    assert delays[1] > delays[0] * 0.9  # growth despite jitter in [0.5, 1)


def test_connect_retry_is_seeded():
    delays_a, delays_b = [], []
    for sink in (delays_a, delays_b):
        with pytest.raises(TransportError):
            connect_with_retry(
                "127.0.0.1",
                1,  # port 1: never connectable, stable across runs
                attempts=3,
                base_delay=0.01,
                sleep=sink.append,
            )
    assert delays_a == delays_b
    assert len(delays_a) == 2
