"""Tests for DoS detection thresholds and multi-vector correlation."""

import pytest

from repro.core.dos import DosDetector, DosThresholds, FloodAttack, weight_sweep
from repro.core.multivector import (
    CONCURRENT,
    ISOLATED,
    SEQUENTIAL,
    correlate_attacks,
)
from repro.core.sessions import Session


def make_session(
    source=1,
    traffic_class="quic-response",
    start=0.0,
    duration=120.0,
    packets=50,
    peak_per_minute=40,
):
    session = Session(
        source=source,
        traffic_class=traffic_class,
        first_ts=start,
        last_ts=start + duration,
        packet_count=packets,
    )
    session.minute_slots = {int(start // 60): peak_per_minute}
    return session


def make_attack(victim=1, vector="quic", start=0.0, end=255.0, packets=100):
    session = make_session(victim, f"{vector}-backscatter" if vector != "quic" else "quic-response", start, end - start, packets)
    return FloodAttack(
        victim_ip=victim,
        vector=vector,
        start=start,
        end=end,
        packet_count=packets,
        max_pps=1.0,
        session=session,
    )


# -- thresholds ------------------------------------------------------------


def test_moore_defaults():
    thresholds = DosThresholds()
    assert thresholds.min_packets == 25
    assert thresholds.min_duration == 60.0
    assert thresholds.min_max_pps == 0.5


def test_attack_passes_all_thresholds():
    assert DosThresholds().matches(make_session())


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(packets=20),                  # too few packets
        dict(duration=45.0),               # too short
        dict(peak_per_minute=20),          # 0.33 max pps, too slow
    ],
)
def test_below_any_threshold_rejected(kwargs):
    assert not DosThresholds().matches(make_session(**kwargs))


def test_thresholds_are_strict_inequalities():
    # exactly 25 packets / 60 s / 0.5 pps must NOT match
    session = make_session(packets=25, duration=60.0, peak_per_minute=30)
    assert not DosThresholds().matches(session)


def test_weighted_thresholds():
    relaxed = DosThresholds().weighted(0.5)
    assert relaxed.min_packets == 12.5
    assert relaxed.min_duration == 30.0
    strict = DosThresholds().weighted(10)
    assert strict.min_max_pps == 5.0
    with pytest.raises(ValueError):
        DosThresholds().weighted(0)


def test_detector_classifies_and_counts():
    detector = DosDetector()
    attack_session = make_session(source=10)
    small_session = make_session(source=11, packets=5, duration=5, peak_per_minute=5)
    detector.consider(attack_session)
    detector.consider(small_session)
    assert len(detector.attacks) == 1
    assert len(detector.rejected_sessions) == 1
    assert detector.detection_rate == 0.5
    assert detector.attacks[0].victim_ip == 10


def test_detector_rejects_non_backscatter_class():
    detector = DosDetector()
    with pytest.raises(ValueError):
        detector.consider(make_session(traffic_class="quic-request"))


def test_weight_sweep_monotone_counts():
    sessions = [
        make_session(source=i, packets=30 + 10 * i, duration=100 + 30 * i, peak_per_minute=35 + 5 * i)
        for i in range(20)
    ]
    results = weight_sweep(sessions, [0.3, 1.0, 2.0, 5.0])
    counts = [len(det.attacks) for _w, det in results]
    assert counts == sorted(counts, reverse=True)
    assert counts[0] >= counts[1]


# -- flood attack helpers ------------------------------------------------------


def test_overlap_and_gap():
    a = make_attack(start=0, end=100)
    b = make_attack(start=50, end=150, vector="tcp")
    c = make_attack(start=200, end=300, vector="tcp")
    assert a.overlap_seconds(b) == 50
    assert a.overlaps(b)
    assert not a.overlaps(c)
    assert a.gap_to(c) == 100
    assert c.gap_to(a) == 100
    assert a.gap_to(b) == 0.0


def test_one_second_concurrency_rule():
    a = make_attack(start=0, end=100)
    b = make_attack(start=99.5, end=200, vector="tcp")
    assert not a.overlaps(b, min_overlap=1.0)
    b2 = make_attack(start=99.0, end=200, vector="tcp")
    assert a.overlaps(b2, min_overlap=1.0)


# -- correlation ------------------------------------------------------------


def test_correlate_categories():
    quic = [
        make_attack(victim=1, start=100, end=200),   # concurrent
        make_attack(victim=2, start=100, end=200),   # sequential
        make_attack(victim=3, start=100, end=200),   # isolated
    ]
    common = [
        make_attack(victim=1, vector="tcp", start=150, end=400),
        make_attack(victim=2, vector="tcp", start=5000, end=6000),
    ]
    analysis = correlate_attacks(quic, common)
    categories = {c.attack.victim_ip: c.category for c in analysis.correlated}
    assert categories == {1: CONCURRENT, 2: SEQUENTIAL, 3: ISOLATED}
    shares = analysis.category_shares()
    assert shares[CONCURRENT] == pytest.approx(1 / 3)


def test_overlap_share_full_and_partial():
    quic = [make_attack(victim=1, start=100, end=200)]
    common = [make_attack(victim=1, vector="tcp", start=0, end=500)]
    analysis = correlate_attacks(quic, common)
    assert analysis.overlap_shares == [1.0]

    common_partial = [make_attack(victim=1, vector="tcp", start=150, end=500)]
    analysis2 = correlate_attacks(quic, common_partial)
    assert analysis2.overlap_shares == [pytest.approx(0.5)]


def test_overlap_share_merges_partners():
    quic = [make_attack(victim=1, start=0, end=100)]
    common = [
        make_attack(victim=1, vector="tcp", start=0, end=30),
        make_attack(victim=1, vector="icmp", start=20, end=60),
    ]
    analysis = correlate_attacks(quic, common)
    assert analysis.overlap_shares == [pytest.approx(0.6)]


def test_sequential_gap_is_nearest():
    quic = [make_attack(victim=1, start=1000, end=1100)]
    common = [
        make_attack(victim=1, vector="tcp", start=0, end=500),     # gap 500
        make_attack(victim=1, vector="tcp", start=2000, end=2500), # gap 900
    ]
    analysis = correlate_attacks(quic, common)
    assert analysis.sequential_gaps == [500.0]


def test_empty_inputs():
    analysis = correlate_attacks([], [])
    assert analysis.category_shares() == {
        CONCURRENT: 0.0,
        SEQUENTIAL: 0.0,
        ISOLATED: 0.0,
    }


def test_victim_timeline():
    quic = [
        make_attack(victim=1, start=100, end=200),
        make_attack(victim=1, start=900, end=1000),
    ]
    common = [make_attack(victim=1, vector="tcp", start=100, end=250)]
    analysis = correlate_attacks(quic, common)
    timeline = analysis.victim_timeline(1)
    vectors = [row[0] for row in timeline]
    assert vectors.count("quic") == 2
    assert vectors.count("tcp") == 1
    starts = [row[1] for row in timeline]
    assert starts == sorted(starts)
