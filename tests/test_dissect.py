"""Tests for the QUIC payload dissector."""

import pytest

from repro.util.rng import SeededRng
from repro.quic.connection import ClientConnection, ServerConnection
from repro.quic.header import PacketType, VersionNegotiationPacket
from repro.quic.retry import build_retry_packet
from repro.quic.versions import DRAFT_29, QUIC_V1
from repro.core.dissect import MIN_SHORT_HEADER_LEN, QuicDissector
from repro.telescope.scanners import ProbePool


@pytest.fixture
def dissector():
    return QuicDissector()


@pytest.fixture
def rng():
    return SeededRng(777)


def test_client_initial_dissects_with_client_hello(dissector, rng):
    client = ClientConnection(rng.child("c"), server_name="target.example")
    dissection = dissector.dissect(client.initial_datagram())
    assert dissection.valid
    assert dissection.packet_types == [PacketType.INITIAL]
    assert dissection.packets[0].decrypted
    assert dissection.packets[0].has_plain_client_hello
    assert dissection.packets[0].client_hello_sni == "target.example"
    assert dissection.packets[0].version_name == "v1"


def test_probe_pool_dissects(dissector, rng):
    pool = ProbePool(rng, size=3)
    for _ in range(3):
        dissection = dissector.dissect(pool.next_probe())
        assert dissection.valid
        assert dissection.packets[0].has_plain_client_hello


def test_server_flight_dissects_without_client_hello(dissector, rng):
    client = ClientConnection(rng.child("c"))
    server = ServerConnection(rng.child("s"))
    responses = server.handle_datagram(client.initial_datagram(), 1, 2, now=0.0)
    first = dissector.dissect(responses[0].data)
    assert first.valid
    assert first.packet_types == [PacketType.INITIAL, PacketType.HANDSHAKE]
    # Backscatter initials are keyed on the attacker's DCID, which the
    # telescope does not know: no plaintext ClientHello visible.
    assert not any(p.has_plain_client_hello for p in first.packets)
    assert first.all_dcids_empty


def test_draft29_initial_dissects(dissector, rng):
    client = ClientConnection(rng.child("c"), version=DRAFT_29, supported_versions=(DRAFT_29,))
    dissection = dissector.dissect(client.initial_datagram())
    assert dissection.valid
    assert dissection.packets[0].version_name == "draft-29"
    assert dissection.packets[0].has_plain_client_hello


def test_retry_packet_detected(dissector):
    wire = build_retry_packet(
        version=QUIC_V1.value, dcid=b"\x01" * 8, scid=b"\x02" * 8, odcid=b"\x03" * 8, token=b"tok"
    )
    dissection = dissector.dissect(wire)
    assert dissection.valid
    assert dissection.has_retry
    assert dissection.packets[0].token_length == 3
    assert dissection.packets[0].packet_type is PacketType.RETRY


def test_version_negotiation_detected(dissector):
    wire = VersionNegotiationPacket(
        dcid=b"\x01" * 8, scid=b"\x02" * 8, supported_versions=(QUIC_V1.value,)
    ).serialize()
    dissection = dissector.dissect(wire)
    assert dissection.valid
    assert dissection.has_version_negotiation


def test_short_header_needs_minimum_length(dissector):
    toolong = bytes([0x40]) + b"\x00" * (MIN_SHORT_HEADER_LEN - 1)
    assert dissector.dissect(toolong).valid
    tooshort = bytes([0x40]) + b"\x00" * 5
    assert not dissector.dissect(tooshort).valid


def test_garbage_rejected(dissector, rng):
    assert not dissector.dissect(b"").valid
    assert not dissector.dissect(b"\x16\xfe\xfd" + rng.randbytes(40)).valid
    assert not dissector.dissect(b"\x00\x01\x02\x03").valid


def test_truncated_initial_rejected(dissector, rng):
    client = ClientConnection(rng.child("c"))
    wire = client.initial_datagram()
    assert not dissector.dissect(wire[:100]).valid


def test_unknown_version_header_only(dissector):
    """Unknown versions dissect at the header level (like Wireshark
    with an unsupported draft) — no decryption attempted."""
    from repro.quic.header import LongHeader
    from repro.quic.packet import PlainPacket, protect_packet
    from repro.quic.crypto import keys_from_secret
    from repro.quic.frames import CryptoFrame

    keys = keys_from_secret(b"\x01" * 32)
    header = LongHeader(
        packet_type=PacketType.INITIAL,
        version=0x1A2B3C4D,
        dcid=b"\x0a" * 8,
        scid=b"\x0b" * 8,
    )
    wire = protect_packet(PlainPacket(header, 0, [CryptoFrame(0, b"x" * 40)]), keys)
    dissection = dissector.dissect(wire)
    assert dissection.valid
    assert dissection.packets[0].version == 0x1A2B3C4D
    assert dissection.packets[0].version_name is None
    assert not dissection.packets[0].decrypted


def test_corrupt_ciphertext_still_header_dissects(dissector, rng):
    """A bit-flipped Initial fails decryption but keeps header fields —
    classification stays QUIC (the header is valid wire format)."""
    client = ClientConnection(rng.child("c"))
    wire = bytearray(client.initial_datagram())
    wire[700] ^= 0xFF
    dissection = dissector.dissect(bytes(wire))
    assert dissection.valid
    assert not dissection.packets[0].decrypted


def test_cache_returns_equal_results(rng):
    dissector = QuicDissector()
    probe = ClientConnection(rng.child("c")).initial_datagram()
    first = dissector.dissect(probe)
    second = dissector.dissect(probe)
    assert first is second  # memoized
    assert dissector.cache_misses == 1
    assert dissector.cache_hits == 1


def test_cache_two_generations_demote_not_drop():
    """Filling the young generation demotes it; hot entries stay
    reachable (and are promoted back) instead of being cleared."""
    dissector = QuicDissector(cache_size=4)
    hot = b"\x00hot"  # invalid payloads still memoize their Dissection
    first = dissector.dissect(hot)
    for i in range(4):  # fill and roll the young generation
        dissector.dissect(b"\x00cold%d" % i)
    assert dissector.cache_misses == 5
    again = dissector.dissect(hot)  # old-generation hit, promoted
    assert again is first
    assert dissector.cache_hits == 1
    assert dissector.cache_misses == 5
    assert dissector.dissect(hot) is first  # now a young-generation hit
    assert dissector.cache_hits == 2


def test_scids_property(dissector, rng):
    client = ClientConnection(rng.child("c"))
    server = ServerConnection(rng.child("s"))
    responses = server.handle_datagram(client.initial_datagram(), 1, 2, now=0.0)
    dissection = dissector.dissect(responses[0].data)
    assert len(set(dissection.scids)) == 1


def test_gquic_probe_recognized(dissector, rng):
    from repro.quic.header import PacketType
    from repro.telescope.scanners import gquic_probe

    probe = gquic_probe(rng)
    dissection = dissector.dissect(probe)
    assert dissection.valid
    assert dissection.packets[0].packet_type is PacketType.GQUIC
    assert dissection.packets[0].version_name == "gQUIC-Q043"
    assert dissection.packets[0].has_plain_client_hello


def test_gquic_unknown_version_tag_named(dissector, rng):
    from repro.telescope.scanners import gquic_probe

    dissection = dissector.dissect(gquic_probe(rng, version_tag=b"Q050"))
    assert dissection.valid
    assert dissection.packets[0].version_name == "gQUIC-Q050"


def test_gquic_requires_version_and_cid_flags(dissector, rng):
    from repro.telescope.scanners import gquic_probe

    probe = bytearray(gquic_probe(rng))
    probe[0] = 0x08  # CID but no version flag
    assert not dissector.dissect(bytes(probe)).valid
    probe[0] = 0x01  # version but no CID flag
    assert not dissector.dissect(bytes(probe)).valid


def test_gquic_bad_version_tag_rejected(dissector, rng):
    probe = bytes([0x09]) + rng.randbytes(8) + b"ZZZZ" + bytes(20)
    assert not dissector.dissect(probe).valid


# -- shared-cache immutability ------------------------------------------


def test_dissect_cache_returns_shared_instance(dissector, rng):
    client = ClientConnection(rng.child("memo"), server_name="memo.example")
    payload = client.initial_datagram()
    first = dissector.dissect(payload)
    second = dissector.dissect(payload)
    # the memo hands out the same object, which is why it must be frozen
    assert first is second
    assert dissector.cache_hits >= 1


def test_dissection_results_are_frozen(dissector, rng):
    import dataclasses

    client = ClientConnection(rng.child("frozen"), server_name="frozen.example")
    dissection = dissector.dissect(client.initial_datagram())
    with pytest.raises(dataclasses.FrozenInstanceError):
        dissection.valid = False
    summary = dissection.packets[0]
    with pytest.raises(dataclasses.FrozenInstanceError):
        summary.decrypted = False
    with pytest.raises(dataclasses.FrozenInstanceError):
        summary.dcid = b"mutated"
    # results carry tuples, not lists: no in-place append possible
    assert isinstance(dissection.packets, tuple)


def test_non_quic_precheck_matches_parser_error(dissector):
    # First byte with neither 0x80 nor 0x40: the pre-check shortcut must
    # report the exact error the header parser raises on the slow path.
    dissection = dissector.dissect(b"\x00" + b"A" * 40)
    assert not dissection.valid
    assert dissection.error == "short header without fixed bit"
