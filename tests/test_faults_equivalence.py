"""Fault injection is deterministic and analysis-path invariant.

Three contracts:

1. **No-op safety** — with faults disabled the injector is the
   identity, and the pinned golden report stays byte-identical (the
   robustness layer costs nothing on clean streams).
2. **Determinism** — a given ``(FaultSpec, seed)`` pair always yields
   the same faulted stream, and a different seed yields a different
   one.
3. **Path equivalence** — under a fixed fault seed, serial,
   ``workers=2..4`` and streaming-exact runs produce identical
   ``PipelineResult`` contents, including identical malformed-input
   tallies (the ``malformed:*`` class counts).
"""

import pytest

from repro.core import AnalysisConfig, QuicsandPipeline
from repro.core.report import build_report
from repro.faults import FaultInjector, FaultSpec
from repro.stream import StreamAnalyzer
from repro.telescope import Scenario, ScenarioConfig
from repro.util.batching import batched
from repro.util.timeutil import HOUR

FAULT_SPEC = FaultSpec(
    bitflip=0.03,
    byteflip=0.02,
    truncate=0.02,
    zero=0.01,
    garbage=0.04,
    duplicate=0.02,
    drop=0.02,
    reorder=0.02,
)
FAULT_SEED = 4242


def make_scenario(seed=11):
    return Scenario(
        ScenarioConfig(seed=seed, duration=1 * HOUR, research_sample=1 / 2048)
    )


def correlation(scenario):
    return dict(
        registry=scenario.internet.registry,
        census=scenario.internet.census,
        greynoise=scenario.internet.greynoise,
    )


def faulted_packets(spec=FAULT_SPEC, seed=FAULT_SEED):
    # scenario generators are stateful: a fresh Scenario per
    # materialization keeps the clean stream reproducible.
    injector = FaultInjector(spec, seed)
    return list(injector.wrap(make_scenario().packets())), injector


@pytest.fixture(scope="module")
def scenario():
    return make_scenario()


@pytest.fixture(scope="module")
def packets():
    faulted, _ = faulted_packets()
    return faulted


def run_pipeline(scenario, packets, workers):
    pipeline = QuicsandPipeline(
        **correlation(scenario), config=AnalysisConfig(workers=workers)
    )
    return pipeline.process(iter(packets))


def run_stream(scenario, packets, batch_size=256):
    analyzer = StreamAnalyzer(**correlation(scenario), config=AnalysisConfig())
    for _ in analyzer.events(batched(iter(packets), batch_size)):
        pass
    return analyzer.result()


# -- no-op safety ------------------------------------------------------------


def test_disabled_spec_is_identity():
    clean = list(make_scenario().packets())
    wrapped = list(
        FaultInjector(FaultSpec(), 1).wrap(make_scenario().packets())
    )
    assert wrapped == clean
    assert FaultSpec.parse("none").enabled() is False
    assert FaultSpec().render() == "none"


def test_disabled_faults_keep_golden_report_identical():
    """`--faults none` must not perturb the pinned report: same
    scenario as tests/test_report_golden.py, wrapped in a disabled
    injector, byte-compared against the same golden file."""
    from tests.test_report_golden import GOLDEN

    scenario = Scenario(
        ScenarioConfig(seed=11, duration=2 * HOUR, research_sample=1 / 2048)
    )
    pipeline = QuicsandPipeline(**correlation(scenario))
    injector = FaultInjector(FaultSpec.parse("none"), seed=999)
    result = pipeline.process(injector.wrap(scenario.packets()))
    text = build_report(result, research_weight=scenario.truth.research_weight)
    assert text == GOLDEN.read_text()


# -- determinism -------------------------------------------------------------


def test_same_seed_same_faulted_stream(packets):
    replay, injector = faulted_packets()
    assert replay == packets
    assert any(injector.stats.values())


def test_different_seed_different_stream(packets):
    other, _ = faulted_packets(seed=FAULT_SEED + 1)
    assert other != packets


def test_faulted_stream_stays_time_ordered(packets):
    timestamps = [p.timestamp for p in packets]
    assert timestamps == sorted(timestamps)


def test_stats_track_applied_faults():
    _, injector = faulted_packets()
    stats = injector.stats
    for kind in ("bitflip", "garbage", "duplicate", "drop", "reorder"):
        assert stats[kind] > 0, f"{kind} never fired on an hour-long stream"
    assert "seed=4242" in injector.summary()


# -- path equivalence under faults -------------------------------------------


def test_serial_parallel_streaming_identical_under_faults(scenario, packets):
    serial = run_pipeline(scenario, packets, workers=1)
    results = {
        "workers=2": run_pipeline(scenario, packets, workers=2),
        "workers=3": run_pipeline(scenario, packets, workers=3),
        "workers=4": run_pipeline(scenario, packets, workers=4),
        "streaming": run_stream(scenario, packets),
    }
    assert serial.malformed_counts, "fault scenario produced no malformed input"
    weight = scenario.truth.research_weight
    golden_report = build_report(serial, research_weight=weight)
    for label, other in results.items():
        assert serial.total_packets == other.total_packets, label
        assert serial.request_sessions == other.request_sessions, label
        assert serial.response_sessions == other.response_sessions, label
        assert serial.tcp_sessions == other.tcp_sessions, label
        assert serial.icmp_sessions == other.icmp_sessions, label
        assert serial.quic_attacks == other.quic_attacks, label
        assert serial.common_attacks == other.common_attacks, label
        assert serial.hourly_requests == other.hourly_requests, label
        assert serial.hourly_responses == other.hourly_responses, label
        assert serial.research_sources == other.research_sources, label
        # identical malformed tallies, reason by reason
        assert serial.malformed_counts == other.malformed_counts, label
        assert serial.class_counts == other.class_counts, label
        assert golden_report == build_report(
            other, research_weight=weight
        ), label


def test_malformed_tally_matches_rejected_class(scenario, packets):
    result = run_pipeline(scenario, packets, workers=1)
    assert (
        sum(result.malformed_counts.values())
        == result.class_counts["non-quic-udp443"]
        == result.dissection_failures
    )


def test_interrupt_shortens_stream():
    clean = list(make_scenario().packets())
    cut, injector = faulted_packets(spec=FaultSpec(interrupt=0.001), seed=7)
    assert injector.stats["interrupt"] == 1
    assert len(cut) < len(clean)
    assert cut == clean[: len(cut)]
