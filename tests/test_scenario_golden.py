"""Golden-report regression tests for every adversarial scenario.

Each scenario registered as adversarial in
:data:`repro.telescope.presets.SCENARIOS` pins its rendered report byte
for byte under ``tests/data/scenario_<name>.txt``.  Any change to the
generators, classification, detection, or rendering shows up as a
readable diff.  After an *intended* change, regenerate with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_scenario_golden.py

and review the golden diffs like any other code change.

A subprocess pair also pins hash-seed independence: the report must not
depend on ``PYTHONHASHSEED`` (no iteration order of an unordered
container may leak into the output).
"""

import difflib
import hashlib
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import QuicsandPipeline
from repro.core.report import build_report
from repro.telescope import Scenario
from repro.telescope.presets import adversarial_scenario_names, scenario_config

DATA = Path(__file__).parent / "data"

#: the representative scenario for the (slow) subprocess hash-seed
#: check; it exercises VN + Retry wire shapes and the victim tables.
HASHSEED_SCENARIO = "adv-vn-retry"


def render_report(name):
    scenario = Scenario(scenario_config(name))
    pipeline = QuicsandPipeline(
        registry=scenario.internet.registry,
        census=scenario.internet.census,
        greynoise=scenario.internet.greynoise,
    )
    result = pipeline.process(scenario.packets())
    return build_report(result, research_weight=scenario.truth.research_weight)


def golden_path(name):
    return DATA / f"scenario_{name}.txt"


def _assert_matches_golden(name, text):
    golden = golden_path(name).read_text()
    if text != golden:
        diff = "\n".join(
            difflib.unified_diff(
                golden.splitlines(),
                text.splitlines(),
                fromfile="golden",
                tofile="current",
                lineterm="",
            )
        )
        raise AssertionError(
            f"scenario {name} report drifted from its golden snapshot "
            "(REPRO_REGEN_GOLDEN=1 regenerates after an intended change):\n"
            + diff
        )


@pytest.mark.parametrize("name", adversarial_scenario_names())
def test_adversarial_report_matches_golden(name):
    text = render_report(name)
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        golden_path(name).write_text(text)
    _assert_matches_golden(name, text)


def test_report_matches_golden_with_template_cache_disabled(monkeypatch):
    """The wire-template caches must not leak into adversarial output:
    the VN/Retry scenario rendered with every cache bypassed still
    matches the same golden snapshot byte for byte."""
    monkeypatch.setenv("REPRO_DISABLE_TEMPLATE_CACHE", "1")
    _assert_matches_golden(HASHSEED_SCENARIO, render_report(HASHSEED_SCENARIO))


def _report_digest_under_hashseed(hash_seed):
    code = (
        "import hashlib, sys;"
        "sys.path.insert(0, 'src');"
        "from tests.test_scenario_golden import render_report, HASHSEED_SCENARIO;"
        "print(hashlib.sha256("
        "render_report(HASHSEED_SCENARIO).encode()).hexdigest())"
    )
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", code],
        cwd=Path(__file__).parent.parent,
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return out.stdout.strip()


def test_report_independent_of_hash_seed():
    """Two interpreters with different hash seeds render the identical
    report — no set/dict iteration order leaks into the output."""
    expected = hashlib.sha256(
        golden_path(HASHSEED_SCENARIO).read_text().encode()
    ).hexdigest()
    digests = {
        seed: _report_digest_under_hashseed(seed) for seed in ("0", "1")
    }
    assert digests == {"0": expected, "1": expected}
