"""Seeded fuzz suite for the dissector and the QUIC header parsers.

Three layers, all driven by :class:`~repro.util.rng.SeededRng` (no
external fuzzing deps, bit-reproducible by seed):

- **random bytes** — arbitrary payloads must never escape
  ``QuicDissector.dissect`` as an exception, and ``parse_header`` /
  ``split_datagram`` may only raise their typed ``HeaderParseError``
  (whose ``reason`` slug must sit in the ``MalformedReason`` taxonomy);
- **structure-aware mutations** — valid QUIC datagrams (client
  Initials, Retry, Version Negotiation) with seeded bit flips,
  truncations, splices and length-field damage, which reach the deep
  parser paths random bytes almost never hit;
- **differential check** — whenever the dissector declares a payload
  valid with a long-header first packet, the raw header parser must
  agree on form, version and DCID (and vice versa: a parser failure on
  the whole datagram means the dissector may only accept it as gQUIC).

Iteration budget comes from ``REPRO_FUZZ_ITERS`` (default keeps tier-1
fast; CI's fuzz-smoke job and the acceptance run raise it).  Any input
that breaks a contract is dumped hex-encoded to ``tests/out/crashers/``
for triage and, once fixed, promoted into ``tests/data/corpus/`` —
which is replayed below on every tier-1 run.
"""

import hashlib
import os
import pathlib

import pytest

from repro.core.dissect import Dissection, MalformedReason, QuicDissector
from repro.quic.header import HeaderParseError, LongHeader, parse_header
from repro.quic.packet import split_datagram
from repro.quic.connection import ClientConnection
from repro.quic.header import RetryPacket, VersionNegotiationPacket
from repro.util.rng import SeededRng

ITERS = int(os.environ.get("REPRO_FUZZ_ITERS", "300"))
CORPUS = pathlib.Path(__file__).parent / "data" / "corpus"
CRASHERS = pathlib.Path(__file__).parent / "out" / "crashers"

REASON_SLUGS = {reason.value for reason in MalformedReason}


def _dump_crasher(payload: bytes, note: str) -> pathlib.Path:
    CRASHERS.mkdir(parents=True, exist_ok=True)
    digest = hashlib.sha256(payload).hexdigest()[:16]
    path = CRASHERS / f"{digest}.hex"
    path.write_text(payload.hex() + "\n# " + note + "\n")
    return path


def _check_contracts(payload: bytes, dissector: QuicDissector) -> None:
    """The never-raise + typed-error + differential contract for one
    payload; dumps a crasher file before failing."""
    try:
        dissection = dissector.dissect(payload)
    except Exception as exc:  # noqa: BLE001 - the point of the fuzz
        path = _dump_crasher(payload, f"dissect raised {exc!r}")
        raise AssertionError(
            f"dissector raised {exc!r} (crasher saved to {path})"
        ) from exc
    assert isinstance(dissection, Dissection)
    if not dissection.valid:
        assert dissection.reason is not None, (
            f"invalid dissection without reason for {payload.hex()!r}"
        )
        assert dissection.reason.value in REASON_SLUGS

    parser_view = None
    try:
        parser_view = parse_header(payload, 0)
        split_datagram(payload)
    except HeaderParseError as exc:
        assert exc.reason in REASON_SLUGS, (
            f"HeaderParseError reason {exc.reason!r} outside taxonomy"
        )
    except Exception as exc:  # noqa: BLE001
        path = _dump_crasher(payload, f"parse_header raised {exc!r}")
        raise AssertionError(
            f"header parser raised {exc!r} (crasher saved to {path})"
        ) from exc

    # differential: dissector-accepted long headers agree with the parser
    if dissection.valid and dissection.packets:
        first = dissection.packets[0]
        if isinstance(parser_view, LongHeader):
            assert first.version == parser_view.version, payload.hex()
            assert first.dcid == parser_view.dcid, payload.hex()
            assert first.scid == parser_view.scid, payload.hex()
        elif parser_view is None:
            # parser rejected the datagram: only the legacy gQUIC path
            # may still accept it
            assert first.packet_type.value == "gquic", payload.hex()


@pytest.fixture(scope="module")
def dissector():
    return QuicDissector()


def valid_datagrams():
    """Structure-aware seed inputs covering every header family."""
    rng = SeededRng(0xD15C, "fuzz-seeds")
    out = [
        ClientConnection(rng.child("a")).initial_datagram(),
        ClientConnection(rng.child("b"), server_name="fuzz.test").initial_datagram(),
        RetryPacket(
            version=0x00000001,
            dcid=b"",
            scid=rng.randbytes(8),
            token=rng.randbytes(24),
            integrity_tag=rng.randbytes(16),
        ).serialize(),
        VersionNegotiationPacket(
            dcid=rng.randbytes(8),
            scid=rng.randbytes(8),
            supported_versions=(0x00000001, 0x6B3343CF),
        ).serialize(),
        bytes([0x40]) + rng.randbytes(40),  # plausible short header
    ]
    out.extend(adversarial_datagrams())
    return out


def adversarial_datagrams():
    """The wire shapes the adversarial scenario generators emit
    (:mod:`repro.telescope.adversarial`): coalesced Initial + 0-RTT
    HTTP/3 request datagrams, VN/RETRY deflection packets with valid
    integrity tags, and near-MTU 1-RTT amplification payloads."""
    from repro.quic.retry import RetryTokenMinter, build_retry_packet
    from repro.telescope.adversarial import _h3_request_datagrams

    rng = SeededRng(0xAD5E, "fuzz-adversarial")
    minter = RetryTokenMinter(secret=rng.randbytes(16))
    odcid = rng.randbytes(8)
    token = minter.mint(
        client_ip=rng.getrandbits(32), client_port=2048, odcid=odcid, now=0.0
    )
    return [
        _h3_request_datagrams(rng.child("probes"), rng.child("requests"), 1)[0],
        build_retry_packet(
            0x00000001,
            dcid=rng.randbytes(8),
            scid=rng.randbytes(8),
            odcid=odcid,
            token=token,
        ),
        VersionNegotiationPacket(
            dcid=rng.randbytes(8),
            scid=rng.randbytes(8),
            supported_versions=(0x00000001, 0x6B3343CF),
        ).serialize(),
        bytes([0x47]) + rng.randbytes(1199),  # optimistic-ACK 1-RTT shape
    ]


def test_fuzz_random_bytes(dissector):
    rng = SeededRng(0xF0221, "fuzz-random")
    for i in range(ITERS):
        length = rng.randint(0, 64) if i % 3 else rng.randint(0, 1500)
        _check_contracts(rng.randbytes(length), dissector)


def test_fuzz_structure_aware_mutations(dissector):
    rng = SeededRng(0xF0222, "fuzz-mutate")
    seeds = valid_datagrams()
    for seed_payload in seeds:
        _check_contracts(seed_payload, dissector)  # unmutated sanity
    for _ in range(ITERS):
        data = bytearray(rng.choice(seeds))
        for _mutation in range(rng.randint(1, 4)):
            choice = rng.randint(0, 4)
            if choice == 0 and data:  # bit flip
                index = rng.randint(0, len(data) - 1)
                data[index] ^= 1 << rng.randint(0, 7)
            elif choice == 1 and data:  # byte overwrite
                data[rng.randint(0, len(data) - 1)] = rng.randint(0, 255)
            elif choice == 2 and len(data) > 1:  # truncate
                del data[rng.randint(1, len(data) - 1) :]
            elif choice == 3:  # extend with garbage (coalesced tail)
                data.extend(rng.randbytes(rng.randint(1, 32)))
            else:  # splice two seeds
                other = rng.choice(seeds)
                cut = rng.randint(0, len(data))
                data = bytearray(bytes(data[:cut]) + other[cut:])
        _check_contracts(bytes(data), dissector)


def test_fuzz_interesting_boundaries(dissector):
    """Hand-picked boundary shapes the random layers may miss."""
    cases = [
        b"",
        b"\x00",
        b"\x80",  # long form, no fixed bit, truncated
        b"\xc0",  # long form + fixed bit, truncated
        b"\xc0\x00\x00\x00\x01",  # version but no CIDs
        b"\xc0\x00\x00\x00\x01\x15" + b"x" * 4,  # CID length > remaining
        b"\x80\x00\x00\x00\x00\x00\x00",  # VN with empty list
        b"\xc0\x00\x00\x00\x01\x00\x00\xff",  # bad token varint
        b"\x40" + b"y" * 10,  # short header below MIN_SHORT_HEADER_LEN
        bytes(1200),  # all zeros, MTU sized
        b"\xff" * 1500,
    ]
    for payload in cases:
        _check_contracts(payload, dissector)


def test_fuzz_adversarial_shapes_keep_taxonomy_closed(dissector):
    """The adversarial generators' wire shapes — and seeded mutations of
    them — must dissect inside the existing 13-slug ``MalformedReason``
    taxonomy: valid, or rejected with a *specific* reason, but never
    ``internal-error`` (a parser path escaping its typed contract)."""
    assert len(MalformedReason) == 13, "taxonomy changed — update fuzz docs"
    rng = SeededRng(0xF0223, "fuzz-adversarial-mutate")
    seeds = adversarial_datagrams()

    def check(payload):
        _check_contracts(payload, dissector)
        dissection = dissector.dissect(payload)
        assert dissection.reason is not MalformedReason.INTERNAL_ERROR, (
            payload.hex()
        )

    for seed_payload in seeds:
        check(seed_payload)
        assert dissector.dissect(seed_payload).valid, seed_payload.hex()
    for _ in range(ITERS):
        data = bytearray(rng.choice(seeds))
        for _mutation in range(rng.randint(1, 4)):
            choice = rng.randint(0, 3)
            if choice == 0 and data:  # bit flip
                index = rng.randint(0, len(data) - 1)
                data[index] ^= 1 << rng.randint(0, 7)
            elif choice == 1 and data:  # byte overwrite
                data[rng.randint(0, len(data) - 1)] = rng.randint(0, 255)
            elif choice == 2 and len(data) > 1:  # truncate
                del data[rng.randint(1, len(data) - 1) :]
            else:  # extend with garbage (coalesced tail)
                data.extend(rng.randbytes(rng.randint(1, 32)))
        check(bytes(data))


def test_corpus_replay(dissector):
    """Every checked-in crasher/edge case stays fixed."""
    corpus = sorted(CORPUS.glob("*.hex"))
    assert corpus, "regression corpus is empty"
    for path in corpus:
        hex_text = "".join(
            line.strip()
            for line in path.read_text().splitlines()
            if line.strip() and not line.startswith("#")
        )
        _check_contracts(bytes.fromhex(hex_text), dissector)


def test_no_stale_crashers():
    """A populated tests/out/crashers/ means an unfixed, unpromoted
    finding — keep the tree clean once fixes land."""
    if CRASHERS.exists():
        stale = sorted(p.name for p in CRASHERS.glob("*.hex"))
        assert not stale, f"unresolved fuzz crashers: {stale}"
