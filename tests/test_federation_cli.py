"""CLI coverage for ``python -m repro federate``."""

import io
import threading

import pytest

from repro.cli import _parse_endpoint, main

FAST = ["--hours", "0.5", "--research-sample", "0.0005", "--seed", "11"]


def run_cli(argv):
    stream = io.StringIO()
    code = main(argv, stream=stream)
    return code, stream.getvalue()


def test_parse_endpoint():
    assert _parse_endpoint("127.0.0.1:9000") == ("127.0.0.1", 9000)
    assert _parse_endpoint("localhost:0") == ("localhost", 0)
    assert _parse_endpoint("no-port") is None
    assert _parse_endpoint(":123") is None
    assert _parse_endpoint("host:port") is None


def test_federate_in_process_spool(tmp_path):
    spool = tmp_path / "spool"
    code, out = run_cli(
        ["federate", *FAST, "--vantages", "2", "--spool", str(spool)]
    )
    assert code == 0
    assert "Federation overview" in out
    assert "dedup hits" in out
    assert "Per-vantage differential" in out
    assert "Extrapolation check" in out
    # the ordinary single-telescope report follows the federation part
    assert "Overview (Figure 2)" in out
    # an explicit spool is kept on disk for inspection
    assert "spool kept at" in out
    assert sorted(p.name for p in spool.glob("*.qsf")) == [
        "vantage-0.qsf",
        "vantage-1.qsf",
    ]


def test_federate_report_out_and_sketch(tmp_path):
    report_path = tmp_path / "federation.txt"
    code, out = run_cli(
        [
            "federate",
            *FAST,
            "--vantages",
            "2",
            "--sketch",
            "--report-out",
            str(report_path),
        ]
    )
    assert code == 0
    assert "(sketch)" in out
    text = report_path.read_text()
    assert "Federation overview" in text


def test_federate_rejects_bad_endpoints():
    code, out = run_cli(["federate", *FAST, "--connect", "nonsense"])
    assert code == 2
    assert "bad --connect endpoint" in out
    code, out = run_cli(["federate", *FAST, "--listen", "nonsense"])
    assert code == 2
    assert "bad --listen endpoint" in out


def test_federate_rejects_zero_vantages():
    code, out = run_cli(["federate", *FAST, "--vantages", "0"])
    assert code == 2
    assert "--vantages" in out


def test_federate_listen_connect_mutually_exclusive():
    code, _out = run_cli(
        ["federate", *FAST, "--listen", "h:1", "--connect", "h:1"]
    )
    assert code == 2


def test_federate_socket_roles():
    """Aggregator --listen and vantage --connect meet over localhost."""
    import socket

    probe = socket.socket()
    try:
        probe.bind(("127.0.0.1", 0))
    except OSError as exc:  # pragma: no cover - sandboxed CI
        pytest.skip(f"cannot bind a localhost socket: {exc}")
    port = probe.getsockname()[1]
    probe.close()

    agg_out = io.StringIO()
    agg_code = []

    def aggregate():
        agg_code.append(
            main(
                [
                    "federate",
                    *FAST,
                    "--listen",
                    f"127.0.0.1:{port}",
                    "--vantages",
                    "1",
                ],
                stream=agg_out,
            )
        )

    thread = threading.Thread(target=aggregate)
    thread.start()
    code, out = run_cli(
        [
            "federate",
            *FAST,
            "--connect",
            f"127.0.0.1:{port}",
            "--vantage-name",
            "solo",
        ]
    )
    thread.join(timeout=600)
    assert code == 0
    assert "shipped" in out
    assert agg_code == [0]
    text = agg_out.getvalue()
    assert "Federation overview" in text
    assert "solo (exact)" in text


@pytest.fixture
def obs_restored():
    """--metrics-out enables the process-wide registry; undo after."""
    from repro import obs

    was = obs.enabled()
    obs.REGISTRY.reset()
    yield
    obs.REGISTRY.reset()
    obs.set_enabled(was)


def test_federate_metrics_out(tmp_path, obs_restored):
    metrics = tmp_path / "fed"
    code, out = run_cli(
        ["federate", *FAST, "--vantages", "2", "--metrics-out", str(metrics)]
    )
    assert code == 0
    prom = (tmp_path / "fed.prom").read_text()
    for family in (
        "repro_federate_frames_total",
        "repro_federate_bytes_total",
        "repro_federate_dedup_hits_total",
        "repro_federate_merge_seconds",
        "repro_federate_vantage_lag_seconds",
    ):
        assert family in prom, family
