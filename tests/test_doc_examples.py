"""Doc code stays executable.

Two layers:

- ``>>>`` examples embedded in README.md and docs/*.md run as
  doctests (the same files CI runs via ``python -m doctest``);
- the ``repro.obs`` modules carry doctests in their docstrings —
  run them here so an API drift fails the suite, not just CI.
"""

import doctest
import pathlib

import pytest

import repro.obs.export
import repro.obs.metrics
import repro.obs.timers

ROOT = pathlib.Path(__file__).resolve().parent.parent
MARKDOWN_FILES = sorted(
    [ROOT / "README.md", *(ROOT / "docs").glob("*.md")]
)


@pytest.mark.parametrize(
    "path", MARKDOWN_FILES, ids=lambda p: p.relative_to(ROOT).as_posix()
)
def test_markdown_doctests(path):
    results = doctest.testfile(
        str(path), module_relative=False, optionflags=doctest.ELLIPSIS
    )
    assert results.failed == 0


def test_markdown_has_some_examples():
    """Guard against the doctest pass going vacuous: at least one doc
    file must carry ``>>>`` examples."""
    total = sum(
        path.read_text().count(">>>") for path in MARKDOWN_FILES
    )
    assert total > 0


@pytest.mark.parametrize(
    "module",
    [repro.obs.metrics, repro.obs.timers, repro.obs.export],
    ids=lambda m: m.__name__,
)
def test_obs_module_doctests(module):
    results = doctest.testmod(module, optionflags=doctest.ELLIPSIS)
    assert results.attempted > 0, f"{module.__name__} lost its doctests"
    assert results.failed == 0
