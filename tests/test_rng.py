"""Tests for the seeded, splittable RNG."""

import pytest

from repro.util.rng import SeededRng, derive_seed


def test_same_seed_same_stream():
    a = SeededRng(123)
    b = SeededRng(123)
    assert [a.randint(0, 10**9) for _ in range(10)] == [
        b.randint(0, 10**9) for _ in range(10)
    ]


def test_children_are_independent_of_sibling_consumption():
    # Consuming one child's stream must not perturb another child.
    root1 = SeededRng(9)
    child_a1 = root1.child("a")
    _ = [child_a1.random() for _ in range(100)]
    child_b1 = root1.child("b")
    seq1 = [child_b1.randint(0, 10**9) for _ in range(5)]

    root2 = SeededRng(9)
    child_b2 = root2.child("b")
    seq2 = [child_b2.randint(0, 10**9) for _ in range(5)]
    assert seq1 == seq2


def test_distinct_labels_give_distinct_streams():
    root = SeededRng(1)
    a = root.child("x")
    b = root.child("y")
    assert [a.randint(0, 10**9) for _ in range(4)] != [
        b.randint(0, 10**9) for _ in range(4)
    ]


def test_split_stream_independent_of_parent_draw_order():
    # A split child's stream depends only on (parent seed, label) —
    # draws made on the parent before or after the split, or on other
    # splits, must not perturb it.
    root1 = SeededRng(21)
    _ = [root1.random() for _ in range(50)]
    _ = root1.split("noise").randbytes(64)
    floods1 = root1.split("floods")
    seq1 = [floods1.randint(0, 10**9) for _ in range(5)]

    floods2 = SeededRng(21).split("floods")
    seq2 = [floods2.randint(0, 10**9) for _ in range(5)]
    assert seq1 == seq2


def test_split_matches_child_derivation():
    assert SeededRng(8).split("x").randbytes(16) == SeededRng(8).child(
        "x"
    ).randbytes(16)


def test_split_rejects_label_reuse():
    root = SeededRng(5)
    root.split("floods")
    with pytest.raises(ValueError, match="already split"):
        root.split("floods")
    # child() keeps its permissive contract, and other labels are fine
    root.child("floods")
    root.split("scans")


def test_derive_seed_stable():
    assert derive_seed(5, "foo") == derive_seed(5, "foo")
    assert derive_seed(5, "foo") != derive_seed(5, "bar")
    assert derive_seed(5, "foo") != derive_seed(6, "foo")


def test_randbytes_length_and_determinism():
    rng = SeededRng(7)
    data = rng.randbytes(16)
    assert len(data) == 16
    assert SeededRng(7).randbytes(16) == data
    assert SeededRng(7).randbytes(0) == b""


def test_weighted_index_distribution():
    rng = SeededRng(11)
    counts = [0, 0, 0]
    for _ in range(3000):
        counts[rng.weighted_index([1, 2, 7])] += 1
    assert counts[2] > counts[1] > counts[0]
    assert abs(counts[2] / 3000 - 0.7) < 0.05


def test_weighted_index_rejects_nonpositive_total():
    rng = SeededRng(11)
    with pytest.raises(ValueError):
        rng.weighted_index([0, 0])


def test_pareto_respects_minimum():
    rng = SeededRng(3)
    values = [rng.pareto(1.5, minimum=10.0) for _ in range(200)]
    assert min(values) >= 10.0
