"""Tests for QUIC variable-length integers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.varint import (
    MAX_VARINT,
    VarintError,
    decode_varint,
    encode_varint,
    varint_length,
)

# RFC 9000 §A.1 worked examples.
RFC_EXAMPLES = [
    (151288809941952652, bytes.fromhex("c2197c5eff14e88c")),
    (494878333, bytes.fromhex("9d7f3e7d")),
    (15293, bytes.fromhex("7bbd")),
    (37, bytes.fromhex("25")),
]


@pytest.mark.parametrize("value,wire", RFC_EXAMPLES)
def test_rfc9000_encode_examples(value, wire):
    assert encode_varint(value) == wire


@pytest.mark.parametrize("value,wire", RFC_EXAMPLES)
def test_rfc9000_decode_examples(value, wire):
    decoded, offset = decode_varint(wire)
    assert decoded == value
    assert offset == len(wire)


def test_two_byte_encoding_of_small_value():
    # RFC 9000: 37 can also be encoded in two bytes as 0x4025.
    assert encode_varint(37, length=2) == bytes.fromhex("4025")
    assert decode_varint(bytes.fromhex("4025"))[0] == 37


def test_length_boundaries():
    assert varint_length(63) == 1
    assert varint_length(64) == 2
    assert varint_length(16383) == 2
    assert varint_length(16384) == 4
    assert varint_length(1073741823) == 4
    assert varint_length(1073741824) == 8
    assert varint_length(MAX_VARINT) == 8


def test_negative_rejected():
    with pytest.raises(VarintError):
        encode_varint(-1)


def test_too_large_rejected():
    with pytest.raises(VarintError):
        encode_varint(MAX_VARINT + 1)


def test_forced_length_too_small_rejected():
    with pytest.raises(VarintError):
        encode_varint(300, length=1)


def test_invalid_forced_length_rejected():
    with pytest.raises(VarintError):
        encode_varint(1, length=3)


def test_truncated_decode_rejected():
    with pytest.raises(VarintError):
        decode_varint(b"")
    with pytest.raises(VarintError):
        decode_varint(bytes.fromhex("c2197c"))  # 8-byte prefix, 3 bytes given


def test_decode_respects_offset():
    data = b"\xff" + encode_varint(15293)
    value, offset = decode_varint(data, 1)
    assert value == 15293
    assert offset == 3


@given(st.integers(min_value=0, max_value=MAX_VARINT))
def test_roundtrip(value):
    wire = encode_varint(value)
    decoded, offset = decode_varint(wire)
    assert decoded == value
    assert offset == len(wire) == varint_length(value)


@given(st.integers(min_value=0, max_value=MAX_VARINT), st.sampled_from([1, 2, 4, 8]))
def test_roundtrip_forced_width(value, width):
    if varint_length(value) > width:
        with pytest.raises(VarintError):
            encode_varint(value, length=width)
        return
    wire = encode_varint(value, length=width)
    assert len(wire) == width
    assert decode_varint(wire)[0] == value
