"""docs/SCENARIOS.md is a contract, not prose.

The two scenario tables must list exactly the presets registered in
:data:`repro.telescope.presets.SCENARIOS` — IBR scenarios under one
heading, adversarial under the other, with the vectors and expected
columns byte-equal to the registry.  Both directions fail: registering
a scenario without documenting it, or documenting one that does not
exist.
"""

import pathlib
import re

from repro.telescope.presets import SCENARIOS, adversarial_scenario_names

DOCS = pathlib.Path(__file__).resolve().parent.parent / "docs" / "SCENARIOS.md"

ROW = re.compile(
    r"^\|\s*`(?P<name>[a-z0-9-]+)`\s*\|\s*(?P<vectors>[^|]+?)\s*\|"
    r"\s*(?P<expected>[^|]+?)\s*\|$"
)


def table_rows(heading: str) -> dict:
    """Parse the three-column table under ``heading`` into
    {name: (vectors, expected)}."""
    rows = {}
    in_section = False
    for line in DOCS.read_text().splitlines():
        if line.startswith("#"):
            in_section = heading in line
            continue
        if not in_section:
            continue
        match = ROW.match(line)
        if not match:
            continue
        name = match.group("name")
        assert name not in rows, f"{name} documented twice under {heading!r}"
        rows[name] = (match.group("vectors"), match.group("expected"))
    return rows


def _vectors_cell(preset) -> str:
    return ", ".join(f"`{vector}`" for vector in preset.vectors)


def _check_section(heading: str, expected_names: tuple):
    documented = table_rows(heading)
    assert documented, f"no scenario rows parsed under {heading!r}"
    missing = sorted(set(expected_names) - set(documented))
    stale = sorted(set(documented) - set(expected_names))
    assert not missing, f"scenarios missing from docs: {missing}"
    assert not stale, f"docs list unknown scenarios: {stale}"
    for name in expected_names:
        preset = SCENARIOS[name]
        vectors, expected = documented[name]
        assert vectors == _vectors_cell(preset), (
            f"{name}: vectors cell {vectors!r} != registry "
            f"{_vectors_cell(preset)!r}"
        )
        assert expected == preset.expected, (
            f"{name}: expected cell {expected!r} != registry "
            f"{preset.expected!r}"
        )


def test_ibr_table_matches_registry():
    ibr = tuple(n for n, p in SCENARIOS.items() if not p.adversarial)
    _check_section("IBR scenario matrix", ibr)


def test_adversarial_table_matches_registry():
    _check_section("Adversarial scenario matrix", adversarial_scenario_names())


def test_cross_references_hold():
    """The files SCENARIOS.md points readers at must exist."""
    text = DOCS.read_text()
    root = DOCS.parent.parent
    for path in (
        "tests/test_scenario_matrix.py",
        "tests/test_scenario_golden.py",
        "tests/test_adversarial_detectors.py",
        "tests/test_docs_scenarios_sync.py",
        "benchmarks/bench_scenarios.py",
        "src/repro/telescope/adversarial.py",
        "src/repro/telescope/presets.py",
    ):
        name = pathlib.Path(path).name
        assert name in text, f"{name} no longer mentioned in SCENARIOS.md"
        assert (root / path).exists(), f"{path} referenced but missing"
