"""Round-trip tests for IPv4/UDP/TCP/ICMP headers and checksums."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addresses import parse_ipv4
from repro.net.checksum import internet_checksum, pseudo_header
from repro.net.icmp import IcmpHeader, IcmpType
from repro.net.ipv4 import IPProto, IPv4Header
from repro.net.tcp import TcpFlags, TcpHeader
from repro.net.udp import UdpHeader

SRC = parse_ipv4("198.51.100.7")
DST = parse_ipv4("44.12.34.56")


def test_checksum_of_valid_header_is_zero():
    header = IPv4Header(src=SRC, dst=DST, proto=IPProto.UDP)
    wire = header.pack(payload_length=8)
    assert internet_checksum(wire) == 0


def test_ipv4_roundtrip():
    header = IPv4Header(src=SRC, dst=DST, proto=IPProto.TCP, ttl=52, identification=777)
    wire = header.pack(payload_length=20) + b"\x00" * 20
    parsed, payload = IPv4Header.parse(wire)
    assert parsed.src == SRC
    assert parsed.dst == DST
    assert parsed.proto == IPProto.TCP
    assert parsed.ttl == 52
    assert parsed.identification == 777
    assert len(payload) == 20


def test_ipv4_rejects_truncated():
    with pytest.raises(ValueError):
        IPv4Header.parse(b"\x45\x00")


def test_ipv4_rejects_wrong_version():
    header = IPv4Header(src=SRC, dst=DST, proto=IPProto.UDP)
    wire = bytearray(header.pack(0))
    wire[0] = (6 << 4) | 5
    with pytest.raises(ValueError):
        IPv4Header.parse(bytes(wire))


def test_udp_roundtrip_and_pseudo_header_checksum():
    payload = b"quic-bytes"
    header = UdpHeader(src_port=443, dst_port=50000)
    wire = header.pack(payload, SRC, DST)
    parsed, got = UdpHeader.parse(wire)
    assert parsed.src_port == 443
    assert parsed.dst_port == 50000
    assert got == payload
    # Verifying: checksum over pseudo-header + segment must be 0.
    pseudo = pseudo_header(SRC, DST, IPProto.UDP, len(wire))
    assert internet_checksum(pseudo + wire) == 0


def test_udp_rejects_bad_length():
    header = UdpHeader(src_port=1, dst_port=2)
    wire = bytearray(header.pack(b"abc", SRC, DST))
    wire[4:6] = (3).to_bytes(2, "big")  # length < 8
    with pytest.raises(ValueError):
        UdpHeader.parse(bytes(wire))


def test_tcp_roundtrip_flags():
    header = TcpHeader(
        src_port=443,
        dst_port=6000,
        seq=12345,
        ack=999,
        flags=TcpFlags.SYN | TcpFlags.ACK,
    )
    wire = header.pack(b"", SRC, DST)
    parsed, rest = TcpHeader.parse(wire)
    assert parsed.is_syn_ack
    assert not parsed.is_rst
    assert parsed.seq == 12345
    assert rest == b""
    pseudo = pseudo_header(SRC, DST, IPProto.TCP, len(wire))
    assert internet_checksum(pseudo + wire) == 0


def test_tcp_rst_flag():
    header = TcpHeader(src_port=1, dst_port=2, flags=TcpFlags.RST | TcpFlags.ACK)
    parsed, _ = TcpHeader.parse(header.pack(b"", SRC, DST))
    assert parsed.is_rst
    assert not parsed.is_syn_ack


def test_icmp_roundtrip():
    header = IcmpHeader(IcmpType.ECHO_REPLY, identifier=42, sequence=7)
    wire = header.pack(b"payload")
    parsed, payload = IcmpHeader.parse(wire)
    assert parsed.icmp_type == IcmpType.ECHO_REPLY
    assert parsed.identifier == 42
    assert payload == b"payload"
    assert internet_checksum(wire) == 0


@pytest.mark.parametrize(
    "icmp_type,expected",
    [
        (IcmpType.ECHO_REPLY, True),
        (IcmpType.DEST_UNREACHABLE, True),
        (IcmpType.TIME_EXCEEDED, True),
        (IcmpType.ECHO_REQUEST, False),
    ],
)
def test_icmp_backscatter_classification(icmp_type, expected):
    assert IcmpHeader(icmp_type).is_backscatter is expected


@given(
    st.integers(min_value=0, max_value=65535),
    st.integers(min_value=0, max_value=65535),
    st.binary(max_size=64),
)
def test_udp_roundtrip_property(sport, dport, payload):
    wire = UdpHeader(sport, dport).pack(payload, SRC, DST)
    parsed, got = UdpHeader.parse(wire)
    assert (parsed.src_port, parsed.dst_port, got) == (sport, dport, payload)
