"""Unit tests for the ``repro.obs`` metrics core.

Everything here runs against private ``Registry`` instances, never the
process-wide ``REGISTRY``, so the suite cannot leak state between
tests (or into the instrumented modules).
"""

import json

import pytest

from repro import obs
from repro.obs.export import (
    metrics_dict,
    render_json,
    render_prometheus,
    render_summary,
    write_metrics,
)
from repro.obs.metrics import Registry
from repro.obs.timers import span, timed


@pytest.fixture
def reg():
    return Registry(enabled=True)


# --------------------------------------------------------------------------
# Counters / gauges / histograms
# --------------------------------------------------------------------------


def test_counter_inc_and_value(reg):
    c = reg.counter("repro_t_total", "help")
    assert c.value() == 0
    c.inc()
    c.inc(4)
    assert c.value() == 5


def test_counter_labels_are_independent(reg):
    c = reg.counter("repro_t_total", "help", labels=("klass",))
    c.inc(klass="a")
    c.inc(2, klass="b")
    assert c.value(klass="a") == 1
    assert c.value(klass="b") == 2
    assert c.value(klass="missing") == 0


def test_counter_rejects_wrong_labels(reg):
    c = reg.counter("repro_t_total", "help", labels=("klass",))
    with pytest.raises(ValueError):
        c.inc(wrong="x")
    with pytest.raises(ValueError):
        c.inc()  # label required


def test_gauge_set_inc_dec(reg):
    g = reg.gauge("repro_g", "help")
    g.set(10)
    g.inc(5)
    g.dec(2)
    assert g.value() == 13


def test_histogram_buckets_sum_count(reg):
    h = reg.histogram("repro_h_seconds", "help", buckets=(1.0, 10.0))
    for v in (0.5, 5.0, 50.0):
        h.observe(v)
    assert h.count() == 3
    assert h.sum() == pytest.approx(55.5)


def test_disabled_registry_is_inert():
    reg = Registry(enabled=False)
    c = reg.counter("repro_t_total", "help")
    h = reg.histogram("repro_h_seconds", "help")
    c.inc(100)
    h.observe(1.0)
    assert c.value() == 0
    assert h.count() == 0


# --------------------------------------------------------------------------
# Registry semantics
# --------------------------------------------------------------------------


def test_get_or_create_returns_same_metric(reg):
    a = reg.counter("repro_t_total", "help")
    b = reg.counter("repro_t_total", "other help ignored")
    assert a is b


def test_type_conflict_raises(reg):
    reg.counter("repro_t_total", "help")
    with pytest.raises(ValueError):
        reg.gauge("repro_t_total", "help")


def test_label_conflict_raises(reg):
    reg.counter("repro_t_total", "help", labels=("a",))
    with pytest.raises(ValueError):
        reg.counter("repro_t_total", "help", labels=("b",))


def test_reset_zeroes_but_keeps_families(reg):
    c = reg.counter("repro_t_total", "help")
    c.inc(7)
    reg.reset()
    assert c.value() == 0
    assert [m.name for m in reg.families()] == ["repro_t_total"]


def test_collectors_run_at_snapshot_time(reg):
    c = reg.counter("repro_cache_hits_total", "help")
    pulls = []

    def collect():
        pulls.append(1)
        c.set_total(42)

    reg.add_collector(collect)
    reg.add_collector(collect)  # deduplicated
    snap = reg.snapshot()
    assert pulls == [1]
    assert snap["repro_cache_hits_total"][4][()] == 42
    reg.snapshot(run_collectors=False)
    assert pulls == [1]


# --------------------------------------------------------------------------
# Snapshot / merge (the multiprocessing contract)
# --------------------------------------------------------------------------


def test_snapshot_merge_counters_add(reg):
    c = reg.counter("repro_t_total", "help", labels=("k",))
    c.inc(3, k="x")
    child = Registry(enabled=True)
    cc = child.counter("repro_t_total", "help", labels=("k",))
    cc.inc(4, k="x")
    cc.inc(1, k="y")
    reg.merge_snapshot(child.snapshot())
    assert c.value(k="x") == 7
    assert c.value(k="y") == 1


def test_snapshot_merge_histograms_add_bucketwise(reg):
    h = reg.histogram("repro_h_seconds", "help", buckets=(1.0,))
    h.observe(0.5)
    child = Registry(enabled=True)
    ch = child.histogram("repro_h_seconds", "help", buckets=(1.0,))
    ch.observe(2.0)
    reg.merge_snapshot(child.snapshot())
    assert h.count() == 2
    assert h.sum() == pytest.approx(2.5)


def test_snapshot_merge_gauges_overwrite(reg):
    g = reg.gauge("repro_g", "help")
    g.set(1)
    child = Registry(enabled=True)
    child.gauge("repro_g", "help").set(9)
    reg.merge_snapshot(child.snapshot())
    assert g.value() == 9


def test_snapshot_merge_bucket_mismatch_raises(reg):
    reg.histogram("repro_h_seconds", "help", buckets=(1.0,))
    child = Registry(enabled=True)
    child.histogram("repro_h_seconds", "help", buckets=(2.0,))
    child.histogram("repro_h_seconds", "help", buckets=(2.0,)).observe(0.1)
    with pytest.raises(ValueError):
        reg.merge_snapshot(child.snapshot())


def test_snapshot_is_picklable(reg):
    import pickle

    reg.counter("repro_t_total", "help", labels=("k",)).inc(k="x")
    snap = reg.snapshot()
    assert pickle.loads(pickle.dumps(snap)) == snap


# --------------------------------------------------------------------------
# Timers
# --------------------------------------------------------------------------


def test_span_records_into_histogram(reg):
    h = reg.histogram("repro_h_seconds", "help", buckets=obs.TIME_BUCKETS)
    with span(h):
        pass
    assert h.count() == 1
    assert h.sum() >= 0.0


def test_span_disabled_is_null(reg):
    dis = Registry(enabled=False)
    h = dis.histogram("repro_h_seconds", "help")
    with span(h):
        pass
    assert h.count() == 0


def test_timed_decorator(reg):
    h = reg.histogram("repro_h_seconds", "help", buckets=obs.TIME_BUCKETS)

    @timed(h)
    def work(x):
        return x * 2

    assert work(21) == 42
    assert h.count() == 1


# --------------------------------------------------------------------------
# Exposition
# --------------------------------------------------------------------------


def _populated():
    reg = Registry(enabled=True)
    reg.counter("repro_a_total", "a counter", labels=("k",)).inc(3, k='q"x')
    reg.gauge("repro_b", "a gauge").set(2.5)
    h = reg.histogram("repro_c_seconds", "a histogram", buckets=(1.0, 10.0))
    h.observe(0.5)
    h.observe(5.0)
    return reg


def test_prometheus_rendering():
    text = render_prometheus(_populated())
    assert "# HELP repro_a_total a counter\n" in text
    assert "# TYPE repro_a_total counter\n" in text
    assert 'repro_a_total{k="q\\"x"} 3\n' in text
    assert "repro_b 2.5\n" in text
    # cumulative buckets + sum/count
    assert 'repro_c_seconds_bucket{le="1"} 1\n' in text
    assert 'repro_c_seconds_bucket{le="10"} 2\n' in text
    assert 'repro_c_seconds_bucket{le="+Inf"} 2\n' in text
    assert "repro_c_seconds_sum 5.5\n" in text
    assert "repro_c_seconds_count 2\n" in text
    assert text.endswith("\n")


def test_json_rendering_round_trips():
    reg = _populated()
    data = json.loads(render_json(reg))
    by_name = {m["name"]: m for m in data["metrics"]}
    assert by_name["repro_b"]["samples"][0]["value"] == 2.5
    assert by_name["repro_a_total"]["type"] == "counter"
    assert by_name["repro_a_total"]["samples"][0]["labels"] == {"k": 'q"x'}
    hist = by_name["repro_c_seconds"]["samples"][0]
    # JSON buckets are raw per-bucket counts (the .prom side is cumulative)
    assert hist["count"] == 2 and sum(hist["buckets"].values()) == 2
    assert metrics_dict(reg)["version"] == data["version"]


def test_write_metrics_pair(tmp_path):
    reg = _populated()
    paths = write_metrics(str(tmp_path / "run.json"), registry=reg)
    prom, js = paths
    assert prom.endswith(".prom") and js.endswith(".json")
    assert "repro_a_total" in open(prom).read()
    json.loads(open(js).read())


def test_render_summary_from_registry_and_path(tmp_path):
    reg = _populated()
    text = render_summary(reg)
    assert "repro_a_total" in text and "repro_c_seconds" in text
    _, js = write_metrics(str(tmp_path / "m.json"), registry=reg)
    assert "repro_b" in render_summary(js)
    assert "no metrics" in render_summary(Registry(enabled=True))


# --------------------------------------------------------------------------
# Process-wide switches
# --------------------------------------------------------------------------


def test_enable_disable_roundtrip():
    before = obs.enabled()
    try:
        obs.enable()
        assert obs.enabled()
        obs.disable()
        assert not obs.enabled()
    finally:
        obs.set_enabled(before)
