"""Analyzer- and CLI-level tests for the sketch tier
(``StreamConfig(mode="sketch")`` / ``watch --sketch``).

The exact mode is the oracle: at default sizing the space-saving table
never overflows on the monitor scenario, so the sketch tier's episode
tracking must reproduce the exact alert stream bit for bit.
"""

import pickle

import pytest

from repro.core import AnalysisConfig
from repro.stream import (
    AttackEnded,
    FloodAlert,
    StreamAnalyzer,
    StreamConfig,
    StreamResultUnavailable,
)
from repro.telescope import Scenario, ScenarioConfig
from repro.util.batching import batched
from repro.util.timeutil import HOUR


@pytest.fixture(scope="module")
def monitor_scenario():
    """One scenario plus a *captured* batch list: ``Scenario.packets()``
    draws fresh randomness per call, so equivalence tests must replay
    the identical stream into every analyzer under comparison."""
    scenario = Scenario(
        ScenarioConfig(seed=11, duration=2 * HOUR, research_sample=1 / 2048)
    )
    return scenario, list(batched(scenario.packets(), 512))


def run_monitor(monitor, stream_config):
    scenario, batches = monitor
    analyzer = StreamAnalyzer(
        registry=scenario.internet.registry,
        census=scenario.internet.census,
        greynoise=scenario.internet.greynoise,
        config=AnalysisConfig(),
        stream_config=stream_config,
    )
    events = list(analyzer.events(iter(batches)))
    return analyzer, events


# -- config ------------------------------------------------------------------


def test_stream_config_mode_validation():
    assert StreamConfig(mode="sketch").mode == "sketch"
    assert StreamConfig().mode == "exact"
    with pytest.raises(ValueError):
        StreamConfig(mode="approximate")


def test_stream_config_bounded_flag_back_compat():
    legacy = StreamConfig(bounded=True)
    assert legacy.mode == "bounded" and legacy.bounded
    sketch = StreamConfig(mode="sketch")
    assert not sketch.bounded


# -- alert equivalence vs the exact oracle -----------------------------------


def test_sketch_alerts_match_exact_alerts(monitor_scenario):
    exact, exact_events = run_monitor(monitor_scenario, StreamConfig())
    sketch, sketch_events = run_monitor(
        monitor_scenario, StreamConfig(mode="sketch")
    )

    def alert_key(alert):
        return (
            alert.vector,
            alert.victim_ip,
            alert.start,
            alert.crossed_at,
            alert.packet_count,
            alert.max_pps,
        )

    assert sorted(map(alert_key, sketch.alerts)) == sorted(
        map(alert_key, exact.alerts)
    )
    assert sketch.alerts  # the scenario actually floods

    def ended_key(event):
        return (event.vector, event.victim_ip, event.start, event.category)

    exact_ended = [e for e in exact_events if isinstance(e, AttackEnded)]
    sketch_ended = [e for e in sketch_events if isinstance(e, AttackEnded)]
    assert sorted(map(ended_key, sketch_ended)) == sorted(
        map(ended_key, exact_ended)
    )
    # every alert is eventually closed out
    alerts = [e for e in sketch_events if isinstance(e, FloodAlert)]
    assert len(alerts) == len(sketch_ended)


def test_sketch_memory_independent_of_source_count():
    """The acceptance bar: tally memory must not grow with sources.
    Two scenarios with very different cardinality, same sketch bytes."""
    def monitor_for(duration, sample):
        scenario = Scenario(
            ScenarioConfig(seed=23, duration=duration, research_sample=sample)
        )
        return scenario, list(batched(scenario.packets(), 512))

    small, _ = run_monitor(
        monitor_for(0.5 * HOUR, 1 / 4096), StreamConfig(mode="sketch")
    )
    large, _ = run_monitor(
        monitor_for(2 * HOUR, 1 / 1024), StreamConfig(mode="sketch")
    )
    assert large.telemetry.packets > 4 * small.telemetry.packets
    # count-min and HLL bytes are *exactly* fixed at construction
    for attr in ("packet_counts", "byte_counts", "sources", "victims"):
        assert getattr(small.sketch, attr).memory_bytes() == getattr(
            large.sketch, attr
        ).memory_bytes()
    # space-saving bytes are bounded by the filled-to-capacity table
    from repro.stream.sketch import SpaceSaving

    probe = SpaceSaving(capacity=small.sketch.heavy["quic"].capacity)
    for key in range(probe.capacity):
        probe.update(key)
    ceiling = (
        small.sketch.packet_counts.memory_bytes()
        + small.sketch.byte_counts.memory_bytes()
        + small.sketch.sources.memory_bytes()
        + small.sketch.victims.memory_bytes()
        + len(small.sketch.heavy) * probe.memory_bytes()
    )
    assert small.sketch.structure_memory_bytes() <= ceiling
    assert large.sketch.structure_memory_bytes() <= ceiling


# -- result() contract -------------------------------------------------------


def test_sketch_result_raises_structured_error(monitor_scenario):
    analyzer, _ = run_monitor(monitor_scenario, StreamConfig(mode="sketch"))
    with pytest.raises(StreamResultUnavailable) as exc_info:
        analyzer.result()
    error = exc_info.value
    assert error.mode == "sketch"
    message = str(error)
    assert "stream_report()" in message
    assert "analyzer.sketch" in message
    assert "StreamConfig(mode=\"exact\")" in message
    assert isinstance(error, RuntimeError)  # old except-clauses still catch


def test_sketch_telemetry_and_status_line(monitor_scenario):
    analyzer, _ = run_monitor(monitor_scenario, StreamConfig(mode="sketch"))
    telemetry = analyzer.telemetry
    assert telemetry.sketch_memory_bytes > 0
    assert telemetry.distinct_sources_est > 0
    assert telemetry.distinct_victims_est > 0
    line = analyzer.status_line()
    assert "sketch[cms=2048x4 topk=512 hll=2^12]" in line
    assert "mem=" in line and "distinct~" in line
    assert "pruned_sources=" in line and "pruned_hours=" in line
    report = analyzer.stream_report()
    assert "sketch mode" in report
    assert "distinct sources" in report


# -- merge across worker shard counts ----------------------------------------


@pytest.mark.parametrize("workers", [1, 2, 3, 4])
def test_tier_merge_deterministic_across_worker_counts(
    monitor_scenario, workers
):
    """Shard the stream by source across 1..4 workers; merged sketch
    state must be identical regardless of the worker count or merge
    order — the property the parallel runner needs."""
    from repro.stream.sketch import SketchTier, mix64

    serial_analyzer, _ = run_monitor(
        monitor_scenario, StreamConfig(mode="sketch")
    )
    serial = serial_analyzer.sketch

    def fresh():
        return SketchTier(seed=20210401)

    shards = [fresh() for _ in range(workers)]
    classifier = serial_analyzer.classifier
    _scenario, batches = monitor_scenario
    for batch in batches:
        lanes = [[] for _ in range(workers)]
        for packet in batch:
            lanes[mix64(packet.ip.src) % workers].append(packet)
        for tier, lane in zip(shards, lanes):
            if lane:
                tier.consume_lane(lane, classifier)

    merged = fresh()
    for tier in shards:
        merged.merge(tier)
    reverse = fresh()
    for tier in reversed(shards):
        reverse.merge(tier)

    # merge order never matters: forward and reverse are identical
    assert merged.packet_counts._rows == reverse.packet_counts._rows
    assert merged.byte_counts._rows == reverse.byte_counts._rows
    assert merged.sources._registers == reverse.sources._registers
    for vector in merged.heavy:
        assert sorted(merged.heavy[vector].items()) == sorted(
            reverse.heavy[vector].items()
        )
    # HLL register-max and the additive tallies are *exactly* the
    # serial state; conservative-update rows coincide only at workers=1
    # (per-shard suppression differs) but the totals always agree
    assert merged.sources._registers == serial.sources._registers
    assert merged.victims._registers == serial.victims._registers
    assert merged.packet_counts.total == serial.packet_counts.total
    assert merged.byte_counts.total == serial.byte_counts.total
    assert merged.hourly_requests == serial.hourly_requests
    assert merged.hourly_responses == serial.hourly_responses
    if workers == 1:
        assert merged.packet_counts._rows == serial.packet_counts._rows
        for vector in merged.heavy:
            assert sorted(merged.heavy[vector].items()) == sorted(
                serial.heavy[vector].items()
            )


def test_analyzer_sketch_state_pickles(monitor_scenario):
    analyzer, _ = run_monitor(monitor_scenario, StreamConfig(mode="sketch"))
    clone = pickle.loads(pickle.dumps(analyzer.sketch))
    assert clone.packet_counts.total == analyzer.sketch.packet_counts.total
    assert clone.on_alert is None


# -- CLI ---------------------------------------------------------------------


def run_cli(argv):
    import io

    from repro.cli import main

    stream = io.StringIO()
    code = main(argv, stream=stream)
    return code, stream.getvalue()


WATCH_FAST = ["--hours", "1.5", "--research-sample", "0.0005", "--seed", "11"]


def test_cli_watch_sketch_mode():
    code, out = run_cli(
        ["watch"] + WATCH_FAST + ["--sketch", "--status-every", "1800"]
    )
    assert code == 0
    assert "[sketch mode]" in out
    assert "[ALERT]" in out
    assert "[ended]" in out
    assert "sketch[cms=" in out
    assert "Streaming monitor summary (sketch mode)" in out


def test_cli_watch_sketch_and_exact_conflict(capsys):
    code, _out = run_cli(["watch"] + WATCH_FAST + ["--sketch", "--exact"])
    assert code == 2
    assert "not allowed with" in capsys.readouterr().err
