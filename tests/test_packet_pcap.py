"""Tests for CapturedPacket wire round-trips and pcap I/O."""

import io
import pickle
import struct

import pytest

from repro.net.addresses import parse_ipv4
from repro.net.icmp import IcmpHeader, IcmpType
from repro.net.ipv4 import IPProto, IPv4Header
from repro.net.packet import CapturedPacket
from repro.net.pcap import (
    LINKTYPE_RAW,
    PcapFormatError,
    PcapReader,
    PcapWriter,
    read_pcap,
    write_pcap,
)
from repro.net.tcp import TcpFlags, TcpHeader
from repro.net.udp import UdpHeader

SRC = parse_ipv4("203.0.113.9")
DST = parse_ipv4("44.99.1.2")


def _udp_packet(ts=1617235200.25, payload=b"x" * 30):
    return CapturedPacket(
        ts,
        IPv4Header(SRC, DST, IPProto.UDP),
        UdpHeader(443, 40000),
        payload,
    )


def test_packet_accessors():
    p = _udp_packet()
    assert p.is_udp and not p.is_tcp and not p.is_icmp
    assert p.src_port == 443
    assert p.dst_port == 40000


def test_icmp_packet_has_no_ports():
    p = CapturedPacket(
        0.0, IPv4Header(SRC, DST, IPProto.ICMP), IcmpHeader(IcmpType.ECHO_REPLY)
    )
    assert p.src_port is None
    assert p.dst_port is None


def test_wire_roundtrip_udp():
    p = _udp_packet()
    q = CapturedPacket.from_bytes(p.timestamp, p.to_bytes())
    assert q.src == p.src and q.dst == p.dst
    assert q.src_port == 443
    assert q.payload == p.payload


def test_wire_roundtrip_tcp():
    p = CapturedPacket(
        5.0,
        IPv4Header(SRC, DST, IPProto.TCP),
        TcpHeader(443, 1234, flags=TcpFlags.SYN | TcpFlags.ACK),
    )
    q = CapturedPacket.from_bytes(5.0, p.to_bytes())
    assert q.transport.is_syn_ack


def test_wire_length_matches_serialization():
    p = _udp_packet()
    assert p.wire_length == len(p.to_bytes())


def test_wire_roundtrip_icmp():
    p = CapturedPacket(
        7.0,
        IPv4Header(SRC, DST, IPProto.ICMP),
        IcmpHeader(IcmpType.ECHO_REPLY, identifier=9, sequence=3),
        b"echo-body",
    )
    q = CapturedPacket.from_bytes(7.0, p.to_bytes())
    assert q.is_icmp and q.proto == int(IPProto.ICMP)
    assert q.transport.identifier == 9
    assert q.transport.sequence == 3
    assert q.payload == b"echo-body"


def test_wire_roundtrip_unknown_proto():
    p = CapturedPacket(8.0, IPv4Header(SRC, DST, proto=47), None, b"gre-ish")
    q = CapturedPacket.from_bytes(8.0, p.to_bytes())
    assert q.transport is None
    assert q.payload == b"gre-ish"
    assert q.src_port is None and q.dst_port is None
    assert not (q.is_udp or q.is_tcp or q.is_icmp)


def test_captured_packet_is_slotted():
    # The hot-path record must never grow a per-instance __dict__.
    p = _udp_packet()
    assert not hasattr(p, "__dict__")
    with pytest.raises(AttributeError):
        p.unexpected_attribute = 1


def test_captured_packet_picklable():
    # The parallel runner ships records to worker processes.
    for p in (
        _udp_packet(),
        CapturedPacket(
            1.0, IPv4Header(SRC, DST, IPProto.TCP), TcpHeader(443, 9999)
        ),
        CapturedPacket(
            2.0, IPv4Header(SRC, DST, IPProto.ICMP), IcmpHeader(IcmpType.ECHO_REPLY)
        ),
        CapturedPacket(3.0, IPv4Header(SRC, DST, proto=47), None, b"raw"),
    ):
        q = pickle.loads(pickle.dumps(p))
        assert q == p
        assert q.src_port == p.src_port
        assert (q.is_udp, q.is_tcp, q.is_icmp) == (p.is_udp, p.is_tcp, p.is_icmp)
        assert q.to_bytes() == p.to_bytes()


def test_unknown_transport_keeps_payload():
    ip = IPv4Header(SRC, DST, proto=47)  # GRE, not modeled
    wire = ip.pack(4) + b"abcd"
    q = CapturedPacket.from_bytes(0.0, wire)
    assert q.transport is None
    assert q.payload == b"abcd"


def test_pcap_roundtrip(tmp_path):
    packets = [
        _udp_packet(1617235200.000001),
        CapturedPacket(
            1617235201.5,
            IPv4Header(SRC, DST, IPProto.TCP),
            TcpHeader(443, 9999, flags=TcpFlags.RST),
        ),
        CapturedPacket(
            1617235202.75,
            IPv4Header(SRC, DST, IPProto.ICMP),
            IcmpHeader(IcmpType.ECHO_REPLY),
            b"ping-data",
        ),
    ]
    path = tmp_path / "capture.pcap"
    assert write_pcap(path, packets) == 3
    loaded = list(read_pcap(path))
    assert len(loaded) == 3
    assert loaded[0].src_port == 443
    assert loaded[1].transport.is_rst
    assert loaded[2].payload == b"ping-data"
    for original, copy in zip(packets, loaded):
        assert abs(original.timestamp - copy.timestamp) < 1e-5


def test_pcap_linktype_recorded(tmp_path):
    path = tmp_path / "raw.pcap"
    write_pcap(path, [_udp_packet()])
    with open(path, "rb") as stream:
        reader = PcapReader(stream)
        assert reader.linktype == LINKTYPE_RAW


def test_pcap_rejects_bad_magic():
    with pytest.raises(PcapFormatError):
        PcapReader(io.BytesIO(b"\x00" * 24))


def test_pcap_rejects_truncated_header():
    with pytest.raises(PcapFormatError):
        PcapReader(io.BytesIO(b"\xd4\xc3\xb2\xa1"))


def test_pcap_rejects_truncated_record():
    buf = io.BytesIO()
    writer = PcapWriter(buf)
    writer.write(_udp_packet())
    data = buf.getvalue()[:-5]  # cut into the last record body
    reader = PcapReader(io.BytesIO(data))
    with pytest.raises(PcapFormatError):
        list(reader)


def test_pcap_big_endian_read():
    # Construct a minimal big-endian pcap by hand.
    p = _udp_packet(3.5)
    body = p.to_bytes()
    global_header = struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 101)
    record = struct.pack(">IIII", 3, 500000, len(body), len(body)) + body
    reader = PcapReader(io.BytesIO(global_header + record))
    packets = list(reader)
    assert len(packets) == 1
    assert packets[0].src_port == 443
    assert abs(packets[0].timestamp - 3.5) < 1e-6


def test_pcap_timestamp_microsecond_carry(tmp_path):
    # A timestamp whose fractional part rounds to 1e6 µs must carry over.
    p = _udp_packet(ts=99.9999999)
    path = tmp_path / "carry.pcap"
    write_pcap(path, [p])
    loaded = list(read_pcap(path))
    assert abs(loaded[0].timestamp - 100.0) < 1e-5
