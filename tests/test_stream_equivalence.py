"""Streaming ≡ batch: the correctness anchor of :mod:`repro.stream`.

On any finite capture the exact-mode :class:`StreamAnalyzer` must
produce a ``PipelineResult`` identical to the batch
:class:`QuicsandPipeline` — sessions, flood attacks, multi-vector
categories, hourly series, and the rendered report — for any session
timeout, seed, and batch size.  This pins the watermark-expiry argument
the same way ``tests/test_parallel.py`` pins serial ≡ parallel.
"""

import pytest

from repro.core import AnalysisConfig, QuicsandPipeline
from repro.core.report import build_report
from repro.stream import AttackEnded, FloodAlert, StreamAnalyzer
from repro.telescope import Scenario, ScenarioConfig
from repro.util.batching import batched
from repro.util.timeutil import HOUR


def make_scenario(seed):
    return Scenario(
        ScenarioConfig(seed=seed, duration=1 * HOUR, research_sample=1 / 2048)
    )


def correlation(scenario):
    return dict(
        registry=scenario.internet.registry,
        census=scenario.internet.census,
        greynoise=scenario.internet.greynoise,
    )


def run_batch(scenario, packets, timeout):
    pipeline = QuicsandPipeline(
        **correlation(scenario), config=AnalysisConfig(session_timeout=timeout)
    )
    return pipeline.process(iter(packets))


def run_stream(scenario, packets, timeout, batch_size):
    analyzer = StreamAnalyzer(
        **correlation(scenario), config=AnalysisConfig(session_timeout=timeout)
    )
    events = list(analyzer.events(batched(iter(packets), batch_size)))
    return analyzer.result(), events


def assert_results_identical(batch, stream):
    assert batch.total_packets == stream.total_packets
    assert batch.window_start == stream.window_start
    assert batch.window_end == stream.window_end

    # session lists (dataclass equality, canonical order)
    assert batch.request_sessions == stream.request_sessions
    assert batch.response_sessions == stream.response_sessions
    assert batch.tcp_sessions == stream.tcp_sessions
    assert batch.icmp_sessions == stream.icmp_sessions

    # attacks and multi-vector categories
    assert batch.quic_attacks == stream.quic_attacks
    assert batch.common_attacks == stream.common_attacks
    assert batch.multivector.by_category() == stream.multivector.by_category()
    assert batch.multivector.overlap_shares == stream.multivector.overlap_shares
    assert batch.multivector.sequential_gaps == stream.multivector.sequential_gaps

    # hourly series and research identification
    assert batch.hourly_requests == stream.hourly_requests
    assert batch.hourly_responses == stream.hourly_responses
    assert batch.hourly_research == stream.hourly_research
    assert batch.hourly_other_quic == stream.hourly_other_quic
    assert batch.research_sources == stream.research_sources
    assert batch.research_packets == stream.research_packets

    # timeout sweep (Figure 4)
    assert batch.timeout_sweep.sweep(range(1, 61)) == stream.timeout_sweep.sweep(
        range(1, 61)
    )

    assert batch.class_counts == stream.class_counts


@pytest.mark.parametrize(
    "seed,timeout",
    [(11, 300.0), (11, 120.0), (7, 300.0), (7, 600.0)],
)
def test_stream_matches_batch(seed, timeout):
    scenario = make_scenario(seed)
    packets = list(scenario.packets())
    batch = run_batch(scenario, packets, timeout)
    stream, events = run_stream(scenario, packets, timeout, batch_size=256)
    assert_results_identical(batch, stream)

    # the rendered report is bit-identical
    weight = scenario.truth.research_weight
    assert build_report(batch, research_weight=weight) == build_report(
        stream, research_weight=weight
    )

    # live alerts are one-to-one with the batch-detected attacks: every
    # final attack crossed the thresholds while open (conditions are
    # monotone), and every crossing survives to the final detection
    alerts = [e for e in events if isinstance(e, FloodAlert)]
    ended = [e for e in events if isinstance(e, AttackEnded)]
    alert_keys = {(a.vector, a.victim_ip, a.start) for a in alerts}
    ended_keys = {(a.vector, a.victim_ip, a.start) for a in ended}
    attack_keys = {
        (a.vector, a.victim_ip, a.start)
        for a in batch.quic_attacks + batch.common_attacks
    }
    assert alert_keys == attack_keys
    assert ended_keys == attack_keys

    # alerts fire at (or before) the batch boundary after the crossing,
    # never before the crossing itself
    for alert in alerts:
        assert alert.emitted_at is not None
        assert alert.latency >= 0.0
        assert alert.start <= alert.crossed_at <= alert.emitted_at


def test_batch_size_independence():
    scenario = make_scenario(11)
    packets = list(scenario.packets())
    small, _ = run_stream(scenario, packets, timeout=300.0, batch_size=64)
    odd, _ = run_stream(scenario, packets, timeout=300.0, batch_size=997)
    assert_results_identical(small, odd)


def test_allowed_lateness_keeps_equivalence():
    from repro.stream import StreamConfig

    scenario = make_scenario(11)
    packets = list(scenario.packets())
    batch = run_batch(scenario, packets, timeout=300.0)
    analyzer = StreamAnalyzer(
        **correlation(scenario),
        config=AnalysisConfig(),
        stream_config=StreamConfig(allowed_lateness=30.0),
    )
    list(analyzer.events(batched(iter(packets), 256)))
    assert_results_identical(batch, analyzer.result())


def test_attack_ended_matches_final_attack_stats():
    scenario = make_scenario(11)
    packets = list(scenario.packets())
    batch = run_batch(scenario, packets, timeout=300.0)
    _, events = run_stream(scenario, packets, timeout=300.0, batch_size=256)
    final = {
        (a.vector, a.victim_ip, a.start): a
        for a in batch.quic_attacks + batch.common_attacks
    }
    for event in events:
        if not isinstance(event, AttackEnded):
            continue
        attack = final[(event.vector, event.victim_ip, event.start)]
        assert event.end == attack.end
        assert event.packet_count == attack.packet_count
        assert event.max_pps == attack.max_pps
