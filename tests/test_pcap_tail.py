"""Tests for the lenient tail mode of :class:`PcapReader`.

Tail mode treats a truncated trailing item — global header or record —
as "not yet written": the reader rewinds to the start of the
incomplete item and stops, and re-iterating after the file has grown
resumes where it left off.  Strict mode keeps raising, exactly as
before.
"""

import io

import pytest

from repro.net.ipv4 import IPProto, IPv4Header
from repro.net.packet import CapturedPacket
from repro.net.pcap import PcapFormatError, PcapReader, PcapWriter
from repro.net.udp import UdpHeader


def make_packet(ts: float, src: int = 1, dst: int = 2) -> CapturedPacket:
    return CapturedPacket(
        ts, IPv4Header(src, dst, IPProto.UDP), UdpHeader(50000, 443), b"payload"
    )


def pcap_bytes(packets) -> bytes:
    buffer = io.BytesIO()
    writer = PcapWriter(buffer)
    for packet in packets:
        writer.write(packet)
    return buffer.getvalue()


def test_strict_mode_still_raises_on_truncated_record():
    data = pcap_bytes([make_packet(1.0)])
    stream = io.BytesIO(data[:-3])
    with pytest.raises(PcapFormatError):
        list(PcapReader(stream))


def test_tail_mode_rewinds_on_truncated_record_body():
    data = pcap_bytes([make_packet(1.0), make_packet(2.0)])
    cut = len(data) - 3  # mid-body of the second record
    stream = io.BytesIO()
    stream.write(data[:cut])
    stream.seek(0)
    reader = PcapReader(stream, tail=True)
    first = list(reader)
    assert [p.timestamp for p in first] == [1.0]

    # nothing new yet: another pass yields nothing and stays put
    assert list(reader) == []

    # writer completes the record; the reader resumes seamlessly
    pos = stream.tell()  # rewound to the start of the partial record
    assert pos < cut
    stream.seek(0, io.SEEK_END)
    stream.write(data[cut:])
    stream.seek(pos)
    second = list(reader)
    assert [p.timestamp for p in second] == [2.0]


def test_tail_mode_rewinds_on_truncated_record_header():
    data = pcap_bytes([make_packet(1.0), make_packet(2.0)])
    header_end = 24  # global header
    record = (len(data) - header_end) // 2
    cut = header_end + record + 7  # mid-header of the second record
    stream = io.BytesIO(data[:cut])
    reader = PcapReader(stream, tail=True)
    assert [p.timestamp for p in reader] == [1.0]
    pos = stream.tell()
    stream.seek(0, io.SEEK_END)
    stream.write(data[cut:])
    stream.seek(pos)
    assert [p.timestamp for p in reader] == [2.0]


def test_tail_mode_defers_incomplete_global_header():
    data = pcap_bytes([make_packet(3.5)])
    stream = io.BytesIO(data[:10])
    reader = PcapReader(stream, tail=True)
    assert not reader.header_read
    assert list(reader) == []
    assert reader.linktype is None

    pos = stream.tell()
    assert pos == 0  # rewound to the start of the partial header
    stream.seek(0, io.SEEK_END)
    stream.write(data[10:])
    stream.seek(pos)
    packets = list(reader)
    assert reader.header_read
    assert reader.linktype == 101
    assert [p.timestamp for p in packets] == [3.5]


def test_tail_mode_bad_magic_still_raises():
    stream = io.BytesIO(b"\x00" * 24)
    reader = PcapReader(stream, tail=True)
    with pytest.raises(PcapFormatError):
        list(reader)


def test_strict_mode_unchanged_roundtrip():
    packets = [make_packet(float(i), src=i + 1) for i in range(5)]
    stream = io.BytesIO(pcap_bytes(packets))
    out = list(PcapReader(stream))
    assert [p.timestamp for p in out] == [p.timestamp for p in packets]
    assert [p.src for p in out] == [p.src for p in packets]
