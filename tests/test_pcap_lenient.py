"""Tests for the lenient interior-corruption mode of the pcap layer.

Tail mode (``tests/test_pcap_tail.py``) handles a *growing* file;
lenient mode handles a *damaged* one: a corrupt record header triggers
a windowed resync scan to the next plausible record, an unparseable
record body is skipped, and either way ``corrupt_records`` counts what
was dropped instead of the whole capture being lost.  ``follow_pcap``
surfaces the same count as deltas to the streaming monitor and the
``repro_pcap_corrupt_records_total`` metric.

Fixtures are built with :func:`repro.faults.corrupt_pcap_bytes`, the
seeded pcap-level corruptor that `repro.faults` exposes for exactly
this kind of test.
"""

import io
import struct

import pytest

from repro.faults import corrupt_pcap_bytes
from repro.net.ipv4 import IPProto, IPv4Header
from repro.net.packet import CapturedPacket
from repro.net.pcap import PcapFormatError, PcapReader, PcapWriter, read_pcap
from repro.net.udp import UdpHeader
from repro.stream.feeds import follow_pcap
from repro.util.rng import SeededRng


def make_packet(ts: float, src: int = 1, dst: int = 2) -> CapturedPacket:
    return CapturedPacket(
        ts, IPv4Header(src, dst, IPProto.UDP), UdpHeader(50000, 443), b"payload"
    )


def pcap_bytes(count: int = 10) -> bytes:
    buffer = io.BytesIO()
    writer = PcapWriter(buffer)
    for i in range(count):
        writer.write(make_packet(float(i), src=i + 1))
    return buffer.getvalue()


def corrupt_one(data: bytes, index: int, kind: str) -> bytes:
    """Deterministically corrupt record ``index`` (0-based) in ``kind``."""
    offset = 24
    for _ in range(index):
        caplen = struct.unpack_from("<I", data, offset + 8)[0]
        offset += 16 + caplen
    out = bytearray(data)
    if kind == "header":
        struct.pack_into("<I", out, offset + 8, 0x7FFF_FFFF)
    else:  # body: first byte 0x00 breaks the IPv4 version nibble
        out[offset + 16] = 0x00
    return bytes(out)


# -- strict mode is unchanged ------------------------------------------------


def test_strict_mode_raises_on_corrupt_record_header():
    data = corrupt_one(pcap_bytes(), 3, "header")
    with pytest.raises(PcapFormatError):
        list(PcapReader(io.BytesIO(data)))


def test_strict_mode_raises_on_corrupt_record_body():
    data = corrupt_one(pcap_bytes(), 3, "body")
    with pytest.raises(ValueError):
        list(PcapReader(io.BytesIO(data)))


# -- lenient mode ------------------------------------------------------------


def test_lenient_skips_corrupt_body_and_counts_it():
    data = corrupt_one(pcap_bytes(), 3, "body")
    reader = PcapReader(io.BytesIO(data), lenient=True)
    packets = list(reader)
    # exactly the damaged record is lost; framing is intact
    assert [p.timestamp for p in packets] == [0.0, 1.0, 2.0, 4.0] + [
        float(i) for i in range(5, 10)
    ]
    assert reader.corrupt_records == 1


def test_lenient_resyncs_after_corrupt_record_header():
    data = corrupt_one(pcap_bytes(), 3, "header")
    reader = PcapReader(io.BytesIO(data), lenient=True)
    packets = list(reader)
    # the absurd caplen destroys record 3's framing; the resync scan
    # must recover at record 4 and lose nothing further
    assert [p.timestamp for p in packets[-6:]] == [float(i) for i in range(4, 10)]
    assert [p.timestamp for p in packets[:3]] == [0.0, 1.0, 2.0]
    assert reader.corrupt_records >= 1


def test_lenient_counts_truncated_final_record():
    data = pcap_bytes(4)
    reader = PcapReader(io.BytesIO(data[:-3]), lenient=True)
    packets = list(reader)
    assert [p.timestamp for p in packets] == [0.0, 1.0, 2.0]
    assert reader.corrupt_records == 1


def test_lenient_body_corruption_count_is_exact():
    """Body corruption keeps framing, so ``corrupt_records`` equals the
    number of corrupted records exactly."""
    rng = SeededRng(77, "pcap-corrupt")
    data, corrupted = corrupt_pcap_bytes(
        pcap_bytes(200), rng, rate=0.25, kinds=("body",)
    )
    assert corrupted > 0
    reader = PcapReader(io.BytesIO(data), lenient=True)
    packets = list(reader)
    assert reader.corrupt_records == corrupted
    assert len(packets) == 200 - corrupted


def test_lenient_header_corruption_recovers_most_of_the_stream(tmp_path):
    rng = SeededRng(78, "pcap-corrupt")
    data, corrupted = corrupt_pcap_bytes(
        pcap_bytes(200), rng, rate=0.05, kinds=("header", "body")
    )
    assert corrupted > 0
    path = tmp_path / "damaged.pcap"
    path.write_bytes(data)
    packets = list(read_pcap(path, lenient=True))
    # a corrupt header may take its successor's framing with it during
    # resync, so recovery is bounded below, not exact
    assert len(packets) >= 200 - 3 * corrupted
    assert len(packets) < 200
    # recovered packets are the original ones, still in order
    timestamps = [p.timestamp for p in packets]
    assert timestamps == sorted(timestamps)
    assert set(timestamps) <= {float(i) for i in range(200)}


def test_read_pcap_strict_by_default(tmp_path):
    path = tmp_path / "damaged.pcap"
    path.write_bytes(corrupt_one(pcap_bytes(), 2, "body"))
    with pytest.raises(ValueError):
        list(read_pcap(path))


# -- follow_pcap lenient wiring ----------------------------------------------


def test_follow_pcap_lenient_reports_corrupt_deltas(tmp_path):
    data = corrupt_one(corrupt_one(pcap_bytes(), 2, "body"), 6, "body")
    path = tmp_path / "damaged.pcap"
    path.write_bytes(data)
    deltas = []
    batches = list(
        follow_pcap(
            path,
            batch_size=3,
            idle_timeout=0.0,
            lenient=True,
            on_corrupt=deltas.append,
        )
    )
    packets = [p for batch in batches for p in batch]
    assert len(packets) == 8
    assert sum(deltas) == 2
    assert all(delta > 0 for delta in deltas)


def test_follow_pcap_strict_raises_on_corruption(tmp_path):
    path = tmp_path / "damaged.pcap"
    path.write_bytes(corrupt_one(pcap_bytes(), 2, "body"))
    with pytest.raises(ValueError):
        for _ in follow_pcap(path, batch_size=3, idle_timeout=0.0):
            pass
