"""Stress combinations: toggled scenarios, lossy resumption, odd telescopes."""

import pytest

from repro.core import AnalysisConfig, QuicsandPipeline
from repro.core.classify import PacketClass, TrafficClassifier
from repro.internet.topology import TopologyConfig
from repro.quic.connection import ClientConnection, ServerConnection
from repro.quic.resumption import SessionCache
from repro.quic.transport import ConnectionRunner
from repro.telescope import Scenario, ScenarioConfig
from repro.util.rng import SeededRng
from repro.util.timeutil import HOUR


def test_resumption_over_lossy_link():
    """Token + ticket collected over a lossy link, then 0-RTT resumption
    over another lossy link — the full post-handshake machinery under
    packet loss."""
    completed = 0
    for seed in range(10):
        rng = SeededRng(9000 + seed)
        cache = SessionCache()
        server = ServerConnection(rng.child("server"), retry_enabled=True)
        first = ClientConnection(
            rng.child("first"), server_name="svc.example", session_cache=cache
        )
        ConnectionRunner(first, server, rng.child("link1"), loss=0.15).run()
        state = cache.lookup("svc.example")
        if state is None or not state.session_ticket:
            continue  # the post-handshake datagram was lost: acceptable
        second = ClientConnection(
            rng.child("second"),
            server_name="svc.example",
            resumption=state,
            early_data=b"GET /",
        )
        runner = ConnectionRunner(second, server, rng.child("link2"), loss=0.15)
        runner.run()
        if second.state == "connected" and second.used_0rtt:
            completed += 1
    assert completed >= 6


def test_scenario_attacks_only():
    config = ScenarioConfig(
        seed=31,
        duration=2 * HOUR,
        include_research=False,
        include_bots=False,
        include_tcp_scans=False,
        include_misconfig=False,
        include_stray=False,
    )
    scenario = Scenario(config)
    classifier = TrafficClassifier()
    for packet in scenario.packets():
        classifier.classify(packet)
    assert classifier.counters[PacketClass.QUIC_REQUEST] == 0
    assert classifier.counters[PacketClass.QUIC_RESPONSE] > 0
    assert classifier.counters[PacketClass.NON_QUIC_UDP443] == 0


def test_scenario_research_only_pipeline():
    config = ScenarioConfig(
        seed=32,
        duration=2 * HOUR,
        research_sample=1 / 1024,
        include_bots=False,
        include_tcp_scans=False,
        include_attacks=False,
        include_misconfig=False,
        include_stray=False,
    )
    scenario = Scenario(config)
    pipeline = QuicsandPipeline(
        registry=scenario.internet.registry,
        config=AnalysisConfig(retry_probe_count=0),
    )
    result = pipeline.process(scenario.packets())
    assert result.research_share == 1.0
    assert result.quic_attacks == []
    assert result.request_share == 0.0  # everything sanitized away


def test_research_threshold_controls_identification():
    config = ScenarioConfig(
        seed=33, duration=2 * HOUR, research_sample=1 / 1024,
        include_attacks=False, include_misconfig=False, include_stray=False,
        include_tcp_scans=False,
    )
    scenario = Scenario(config)
    packets = list(scenario.packets())
    low = QuicsandPipeline(
        registry=scenario.internet.registry,
        config=AnalysisConfig(research_min_packets=100, retry_probe_count=0),
    ).process(iter(packets))
    high = QuicsandPipeline(
        registry=scenario.internet.registry,
        config=AnalysisConfig(research_min_packets=10**9, retry_probe_count=0),
    ).process(iter(packets))
    assert len(low.research_sources) >= 1
    assert len(high.research_sources) == 0  # threshold too high: none found


def test_small_telescope_end_to_end():
    """A /16 darknet: the machinery runs; detection is starved, matching
    the A5 ablation."""
    config = ScenarioConfig(
        seed=34,
        duration=2 * HOUR,
        research_sample=1 / 64,
        topology=TopologyConfig(telescope_cidr="44.0.0.0/16"),
    )
    scenario = Scenario(config)
    assert scenario.telescope.extrapolation_factor == 65536
    pipeline = QuicsandPipeline(
        registry=scenario.internet.registry,
        census=scenario.internet.census,
        config=AnalysisConfig(retry_probe_count=0),
    )
    result = pipeline.process(scenario.packets())
    assert result.total_packets > 0
    for packet_class in ("quic-request", "quic-response"):
        assert result.class_counts.get(packet_class, 0) >= 0  # pipeline intact


def test_scenario_seeds_give_different_plans():
    a = Scenario(ScenarioConfig(seed=41, duration=2 * HOUR))
    b = Scenario(ScenarioConfig(seed=42, duration=2 * HOUR))
    starts_a = [f.start for f in a.plan.quic_floods]
    starts_b = [f.start for f in b.plan.quic_floods]
    assert starts_a != starts_b
