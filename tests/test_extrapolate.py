"""Tests for telescope-to-Internet extrapolation."""

import pytest

from repro.core.extrapolate import TelescopeExtrapolator
from repro.net.addresses import IPv4Network


@pytest.fixture
def slash9():
    return TelescopeExtrapolator(IPv4Network.from_cidr("44.0.0.0/9"))


def test_factor_512_for_slash9(slash9):
    assert slash9.factor == 512
    assert slash9.coverage == pytest.approx(1 / 512)


def test_paper_extrapolation_example(slash9):
    """Section 5.2: 27 pps at the /9 -> 27*512 = 13,824 pps."""
    estimate = slash9.rate(27.0)
    assert estimate.estimated_pps == pytest.approx(13_824)
    assert estimate.low_pps < estimate.estimated_pps < estimate.high_pps


def test_median_flood_extrapolates_to_512(slash9):
    estimate = slash9.rate(1.0)
    assert estimate.estimated_pps == pytest.approx(512)


def test_interval_tightens_with_window(slash9):
    narrow = slash9.rate(1.0, window=60.0)
    wide = slash9.rate(1.0, window=600.0)
    assert (wide.high_pps - wide.low_pps) < (narrow.high_pps - narrow.low_pps)


def test_zero_rate(slash9):
    estimate = slash9.rate(0.0)
    assert estimate.estimated_pps == 0.0
    assert estimate.low_pps == 0.0
    assert estimate.high_pps == 0.0


def test_negative_rate_rejected(slash9):
    with pytest.raises(ValueError):
        slash9.rate(-1.0)


def test_sweep_constant(slash9):
    assert slash9.scan_packets_per_sweep() == 2**23


def test_detection_probability_monotone(slash9):
    small = slash9.detection_probability(10)
    large = slash9.detection_probability(10_000)
    assert 0 < small < large < 1
    assert slash9.detection_probability(0) == 0.0
    with pytest.raises(ValueError):
        slash9.detection_probability(-1)


def test_detection_probability_half_at_355(slash9):
    # 1-(1-1/512)^n = 0.5 at n ~ 355 spoofed packets
    assert slash9.detection_probability(355) == pytest.approx(0.5, abs=0.01)


def test_smaller_telescope_higher_floor():
    slash9 = TelescopeExtrapolator(IPv4Network.from_cidr("44.0.0.0/9"))
    slash16 = TelescopeExtrapolator(IPv4Network.from_cidr("10.0.0.0/16"))
    assert slash16.min_rate_for_threshold() > slash9.min_rate_for_threshold()
    assert slash9.min_rate_for_threshold(0.5) == 256.0


def test_attack_rate_uses_max_pps(slash9):
    class FakeAttack:
        max_pps = 2.0

    estimate = slash9.attack_rate(FakeAttack())
    assert estimate.estimated_pps == pytest.approx(1024)


def test_estimate_str_renders(slash9):
    text = str(slash9.rate(1.0))
    assert "512" in text and "pps" in text
