"""Gen-lane equivalence: the generation fast lane is invisible too.

The acceptance contract of the columnar generation lane
(:mod:`repro.telescope.genlane` + :mod:`repro.telescope.parallel`),
mirroring ``tests/test_lane_equivalence.py`` for the analysis lane:

- the wire bytes stamped from mutable templates
  (``write_records(wire_items(scenario.records()))``) produce a pcap
  byte-identical to the rich per-packet object path
  (``capture_to_pcap(scenario.packets())``);
- sharded parallel generation (``records(workers=1..4)``, worker
  processes merged by timestamp) is bit-identical to serial;
- the fused generate→analyze path
  (``process_record_batches(scenario.lane_batches())``) produces a
  :class:`PipelineResult` identical to dissecting the rich packet
  stream, with and without generation workers.
"""

import dataclasses

import pytest

from repro.core import QuicsandPipeline
from repro.core.pipeline import AnalysisConfig
from repro.core.report import build_report
from repro.net.pcap import write_records
from repro.telescope import Scenario, ScenarioConfig
from repro.telescope.genlane import wire_items
from repro.util.timeutil import HOUR

SCENARIO_KW = dict(seed=11, duration=HOUR, research_sample=1 / 2048)

#: same identity-compared helper fields as tests/test_lane_equivalence.py
_IDENTITY_FIELDS = {"config", "timeout_sweep", "quic_detector", "common_detector"}


def scenario():
    # a fresh Scenario per call: generation consumes its RNG streams
    return Scenario(ScenarioConfig(**SCENARIO_KW))


@pytest.fixture(scope="module")
def rich_pcap_bytes(tmp_path_factory):
    path = tmp_path_factory.mktemp("genlane") / "rich.pcap"
    s = scenario()
    count = s.telescope.capture_to_pcap(s.packets(), path)
    assert count > 0
    return path.read_bytes()


def make_pipeline(s, **config_kw):
    return QuicsandPipeline(
        registry=s.internet.registry,
        census=s.internet.census,
        greynoise=s.internet.greynoise,
        config=AnalysisConfig(**config_kw),
    )


def assert_identical(reference, other, s, label):
    for field in dataclasses.fields(reference):
        if field.name in _IDENTITY_FIELDS:
            continue
        assert getattr(reference, field.name) == getattr(
            other, field.name
        ), (label, field.name)
    assert reference.timeout_sweep.sweep(range(1, 61)) == other.timeout_sweep.sweep(
        range(1, 61)
    ), label
    weight = s.truth.research_weight
    assert build_report(reference, research_weight=weight) == build_report(
        other, research_weight=weight
    ), label


def test_gen_lane_pcap_bytes_identical_to_rich(tmp_path, rich_pcap_bytes):
    """Serial fast generation writes the exact pcap the object path does."""
    path = tmp_path / "fast.pcap"
    s = scenario()
    write_records(path, wire_items(s.records()))
    assert path.read_bytes() == rich_pcap_bytes


@pytest.mark.parametrize("workers", [1, 2, 3, 4])
def test_parallel_generation_bit_identical(tmp_path, rich_pcap_bytes, workers):
    """Sharded worker generation merges back to the exact serial bytes."""
    path = tmp_path / f"workers{workers}.pcap"
    s = scenario()
    write_records(path, wire_items(s.records(workers=workers)))
    assert path.read_bytes() == rich_pcap_bytes


def test_parallel_record_stream_identical():
    """Not just the bytes: the flat gen records themselves match, so
    the fused analyze path sees an identical stream from any shard
    count."""
    serial = list(scenario().records())
    assert serial
    parallel = list(scenario().records(workers=2))
    assert parallel == serial


def test_fused_record_path_matches_rich_pipeline():
    """generate→analyze without packets or wire bytes: lane_batches into
    process_record_batches equals the full dissection pipeline."""
    s_rich = scenario()
    reference = make_pipeline(s_rich, fast_lane=True).process(s_rich.packets())

    s_fused = scenario()
    pipeline = make_pipeline(s_fused, fast_lane=True)
    fused = pipeline.process_record_batches(
        s_fused.lane_batches(pipeline.config.batch_size)
    )
    assert_identical(reference, fused, s_rich, "fused")

    s_workers = scenario()
    pipeline = make_pipeline(s_workers, fast_lane=True)
    fused_workers = pipeline.process_record_batches(
        s_workers.lane_batches(pipeline.config.batch_size, workers=2)
    )
    assert_identical(reference, fused_workers, s_rich, "fused-workers=2")
