"""Integration tests: scenario generation through the full pipeline.

These exercise the complete loop the paper's toolchain ran — synthetic
telescope capture in, detected attacks and correlations out — and check
detector output against the scenario's ground truth.  The window is
kept small (hours) so the suite stays fast; the benches run the
paper-scale windows.
"""

import pytest

from repro.telescope import Scenario, ScenarioConfig
from repro.telescope.attacks import AttackPlanConfig
from repro.core import AnalysisConfig, QuicsandPipeline
from repro.core.dos import weight_sweep
from repro.internet.asn import NetworkType
from repro.util.timeutil import HOUR


@pytest.fixture(scope="module")
def scenario():
    config = ScenarioConfig(
        duration=6 * HOUR,
        research_sample=1.0 / 512,
        attacks=AttackPlanConfig(common_floods_per_hour=4.0),
    )
    return Scenario(config)


@pytest.fixture(scope="module")
def result(scenario):
    pipeline = QuicsandPipeline(
        registry=scenario.internet.registry,
        census=scenario.internet.census,
        greynoise=scenario.internet.greynoise,
    )
    return pipeline.process(scenario.packets())


def test_scenario_is_deterministic():
    config = ScenarioConfig(duration=1 * HOUR, research_sample=1.0 / 2048)
    a = [p.timestamp for p in Scenario(config).packets()]
    b = [p.timestamp for p in Scenario(config).packets()]
    assert a == b and len(a) > 100


def test_research_scanners_identified(result, scenario):
    assert result.research_sources <= set(scenario.truth.research_sources)
    assert len(result.research_sources) >= 1
    assert result.research_packets > 0


def test_request_share_in_paper_range(result):
    # paper: 15% requests / 85% responses in sanitized traffic
    assert 0.05 < result.request_share < 0.35


def test_sessions_are_single_direction(result):
    request_sources = {s.source for s in result.request_sessions}
    response_sources = {s.source for s in result.response_sessions}
    assert not request_sources & response_sources


def test_detection_rate_near_paper(result):
    # paper: 11% of response sessions classified as attacks
    assert 0.03 < result.quic_detector.detection_rate < 0.35


def test_detected_attacks_hit_true_victims(result, scenario):
    truth_victims = scenario.truth.quic_victims
    for attack in result.quic_attacks:
        assert attack.victim_ip in truth_victims


def test_most_planned_attacks_detected(result, scenario):
    planned = len(scenario.plan.quic_floods)
    detected = len(result.quic_attacks)
    assert detected >= 0.6 * planned


def test_attack_durations_plausible(result):
    for attack in result.quic_attacks:
        assert attack.duration > 60.0
        assert attack.packet_count > 25
        assert attack.max_pps > 0.5


def test_request_sessions_from_eyeballs(result):
    counts = result.request_network_types
    eyeball = counts.get(NetworkType.EYEBALL, 0)
    assert eyeball / sum(counts.values()) > 0.9


def test_response_sessions_from_content(result):
    counts = result.response_network_types
    content = counts.get(NetworkType.CONTENT, 0)
    assert content / sum(counts.values()) > 0.6


def test_victims_are_known_quic_servers(result):
    # paper: 98% of attacks target known QUIC servers
    assert result.victim_analysis.known_server_share > 0.85


def test_provider_shares(result):
    google = result.victim_analysis.provider_share("Google")
    facebook = result.victim_analysis.provider_share("Facebook")
    assert google > facebook
    assert google + facebook > 0.6


def test_message_types_initial_third(result):
    shares = result.message_type_shares()
    assert 0.2 < shares.get("initial", 0) < 0.45
    assert shares.get("handshake", 0) > shares.get("initial", 0)


def test_backscatter_validity_empty_dcids(result):
    assert result.empty_dcid_share > 0.99


def test_no_retry_observed(result):
    assert result.passive_retry_packets == 0
    assert result.retry_audit is not None
    assert not result.retry_audit.retry_deployed
    assert len(result.retry_audit.probes) > 0
    assert all(p.handshake_completed for p in result.retry_audit.probes)


def test_greynoise_no_benign_request_sources(result):
    assert result.greynoise_summary["benign"] == 0


def test_request_country_mix(result):
    counts = result.request_country_counts
    assert counts, "no request sessions attributed"
    top = max(counts, key=counts.get)
    assert top in ("BD", "US")


def test_timeout_sweep_knee_near_5_minutes(result):
    sweep = result.timeout_sweep
    s1 = sweep.sessions_at(1 * 60)
    s5 = sweep.sessions_at(5 * 60)
    s30 = sweep.sessions_at(30 * 60)
    assert s1 > s5  # meaningful reduction up to 5 minutes
    assert (s5 - s30) < (s1 - s5)  # flat afterwards
    assert 2 <= sweep.knee_minutes() <= 10


def test_dissection_excludes_stray_udp(result):
    assert result.dissection_failures > 0


def test_weight_sweep_keeps_content_dominance(result, scenario):
    results = weight_sweep(result.response_sessions, [0.3, 1.0, 3.0])
    counts = [len(det.attacks) for _w, det in results]
    assert counts == sorted(counts, reverse=True)
    census = scenario.internet.census
    for weight, detector in results:
        if not detector.attacks:
            continue
        known = sum(
            1 for a in detector.attacks if census.is_known_quic_server(a.victim_ip)
        )
        assert known / len(detector.attacks) > 0.8


def test_multivector_categories_present(result):
    shares = result.multivector.category_shares()
    assert shares["concurrent"] > 0.25
    assert shares["sequential"] > 0.1


def test_pipeline_without_correlation_sources(scenario):
    """The pipeline degrades gracefully with no registry/census/greynoise."""
    pipeline = QuicsandPipeline(config=AnalysisConfig(retry_probe_count=0))
    config = ScenarioConfig(duration=1 * HOUR, research_sample=1.0 / 2048)
    result = pipeline.process(Scenario(config).packets())
    assert result.total_packets > 0
    assert result.victim_analysis.known_server_share == 0.0
    assert result.retry_audit is None
    assert result.greynoise_summary == {}
