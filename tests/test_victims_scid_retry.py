"""Tests for victim attribution, SCID fingerprinting and the RETRY audit."""

import pytest

from repro.net.addresses import parse_ipv4
from repro.util.rng import SeededRng
from repro.internet.activescan import ActiveScanCensus, QuicServerRecord
from repro.internet.asn import AsRegistry, NetworkType
from repro.net.addresses import IPv4Network
from repro.core.dos import FloodAttack
from repro.core.retry_audit import ActiveProber, audit_retry
from repro.core.scid import fingerprint_attacks, provider_profiles
from repro.core.sessions import Session
from repro.core.victims import analyze_victims, session_network_types

GOOGLE_IP = parse_ipv4("8.8.4.4")
FB_IP = parse_ipv4("31.13.1.1")
UNKNOWN_IP = parse_ipv4("203.0.113.77")


@pytest.fixture
def census():
    return ActiveScanCensus(
        [
            QuicServerRecord(GOOGLE_IP, 15169, "Google", ("draft-29",), "g.example"),
            QuicServerRecord(FB_IP, 32934, "Facebook", ("mvfst-draft-27",), "f.example"),
        ]
    )


def make_attack(victim, start=0.0, end=255.0, scids=3, ips=2, ports=5, packets=60):
    session = Session(
        source=victim,
        traffic_class="quic-response",
        first_ts=start,
        last_ts=end,
        packet_count=packets,
    )
    session.dst_ips = set(range(ips))
    session.dst_ports = set(range(ports))
    session.scids = {bytes([i] * 8) for i in range(scids)}
    session.version_names = {"draft-29": packets}
    return FloodAttack(
        victim_ip=victim,
        vector="quic",
        start=start,
        end=end,
        packet_count=packets,
        max_pps=1.0,
        session=session,
    )


# -- victims ------------------------------------------------------------


def test_analyze_victims_counts(census):
    attacks = [
        make_attack(GOOGLE_IP),
        make_attack(GOOGLE_IP, start=1000, end=1300),
        make_attack(FB_IP),
        make_attack(UNKNOWN_IP),
    ]
    analysis = analyze_victims(attacks, census)
    assert analysis.attack_count == 4
    assert analysis.victim_count == 3
    assert analysis.known_server_share == 0.75
    assert analysis.provider_share("Google") == 0.5
    assert analysis.provider_share("Facebook") == 0.25
    assert analysis.single_attack_victim_share == pytest.approx(2 / 3)
    assert analysis.attacks_per_victim_sorted() == [2, 1, 1]
    assert analysis.top_victims(1) == [(GOOGLE_IP, 2)]


def test_analyze_victims_empty(census):
    analysis = analyze_victims([], census)
    assert analysis.known_server_share == 0.0
    assert analysis.single_attack_victim_share == 0.0


def test_analyze_victims_network_types(census):
    registry = AsRegistry()
    registry.register(
        15169, "Google", NetworkType.CONTENT,
        prefixes=[IPv4Network.from_cidr("8.8.4.0/24")],
    )
    analysis = analyze_victims([make_attack(GOOGLE_IP)], census, registry)
    assert analysis.network_type_attacks == {NetworkType.CONTENT: 1}


def test_session_network_types():
    registry = AsRegistry()
    registry.register(
        1, "eyeball", NetworkType.EYEBALL,
        prefixes=[IPv4Network.from_cidr("10.0.0.0/8")],
    )
    sessions = [
        Session(parse_ipv4("10.1.1.1"), "quic-request", 0.0, 1.0),
        Session(parse_ipv4("10.2.2.2"), "quic-request", 0.0, 1.0),
        Session(parse_ipv4("99.9.9.9"), "quic-request", 0.0, 1.0),
    ]
    counts = session_network_types(sessions, registry)
    assert counts[NetworkType.EYEBALL] == 2
    assert counts[NetworkType.UNKNOWN] == 1


# -- scid fingerprints ---------------------------------------------------


def test_fingerprint_attacks(census):
    fingerprints = fingerprint_attacks([make_attack(GOOGLE_IP, scids=7, ips=3, ports=9)], census)
    fp = fingerprints[0]
    assert fp.provider == "Google"
    assert fp.unique_scids == 7
    assert fp.unique_client_ips == 3
    assert fp.unique_client_ports == 9
    assert fp.version_mix == {"draft-29": 60}


def test_provider_profiles(census):
    attacks = [
        make_attack(GOOGLE_IP, scids=10),
        make_attack(GOOGLE_IP, scids=20),
        make_attack(FB_IP, scids=2),
        make_attack(UNKNOWN_IP),
    ]
    profiles = provider_profiles(fingerprint_attacks(attacks, census))
    assert profiles["Google"].attack_count == 2
    assert profiles["Google"].median("unique_scids") == 15
    assert profiles["Facebook"].median("unique_scids") == 2
    assert "unknown" in profiles
    name, share = profiles["Google"].dominant_version()
    assert name == "draft-29" and share == 1.0


# -- retry audit ------------------------------------------------------------


def test_active_probe_no_retry(census):
    prober = ActiveProber(census, SeededRng(1))
    result = prober.probe(GOOGLE_IP)
    assert result is not None
    assert result.handshake_completed
    assert not result.retry_received
    assert result.provider == "Google"


def test_active_probe_unknown_address(census):
    assert ActiveProber(census, SeededRng(1)).probe(UNKNOWN_IP) is None


def test_active_probe_detects_retry_when_deployed():
    census = ActiveScanCensus(
        [
            QuicServerRecord(
                GOOGLE_IP, 15169, "Google", ("v1",), "g.example",
                supports_retry=True, sends_retry=True,
            )
        ]
    )
    result = ActiveProber(census, SeededRng(2)).probe(GOOGLE_IP)
    assert result.retry_received
    assert result.handshake_completed
    assert result.round_trips >= 2


def test_audit_combines_passive_and_active(census):
    audit = audit_retry(
        census=census,
        rng=SeededRng(3),
        passive_retry_packets=0,
        passive_quic_packets=1000,
        top_victims=[(GOOGLE_IP, 5), (FB_IP, 2), (UNKNOWN_IP, 1)],
    )
    assert len(audit.probes) == 2  # unknown victim skipped
    assert not audit.retry_deployed
    audit_positive = audit_retry(
        census=census,
        rng=SeededRng(3),
        passive_retry_packets=3,
        passive_quic_packets=1000,
        top_victims=[],
    )
    assert audit_positive.retry_observed_passively
    assert audit_positive.retry_deployed
