"""Tests for Retry tokens and integrity tags."""

import pytest

from repro.quic.header import RetryPacket, parse_header
from repro.quic.retry import (
    RetryTokenError,
    RetryTokenMinter,
    build_retry_packet,
    retry_integrity_tag,
    verify_retry_packet,
)
from repro.quic.versions import QUIC_V1

CLIENT_IP = 0xC0A80101
CLIENT_PORT = 50123
ODCID = b"\xaa" * 8


@pytest.fixture
def minter():
    return RetryTokenMinter(secret=b"\x42" * 32, lifetime=30.0)


def test_mint_validate_roundtrip(minter):
    token = minter.mint(CLIENT_IP, CLIENT_PORT, ODCID, now=1000.0)
    assert minter.validate(token, CLIENT_IP, CLIENT_PORT, now=1005.0) == ODCID


def test_token_bound_to_ip(minter):
    token = minter.mint(CLIENT_IP, CLIENT_PORT, ODCID, now=1000.0)
    with pytest.raises(RetryTokenError):
        minter.validate(token, CLIENT_IP + 1, CLIENT_PORT, now=1005.0)


def test_token_bound_to_port(minter):
    token = minter.mint(CLIENT_IP, CLIENT_PORT, ODCID, now=1000.0)
    with pytest.raises(RetryTokenError):
        minter.validate(token, CLIENT_IP, CLIENT_PORT + 1, now=1005.0)


def test_token_expires(minter):
    token = minter.mint(CLIENT_IP, CLIENT_PORT, ODCID, now=1000.0)
    with pytest.raises(RetryTokenError):
        minter.validate(token, CLIENT_IP, CLIENT_PORT, now=1031.0)


def test_token_from_future_rejected(minter):
    token = minter.mint(CLIENT_IP, CLIENT_PORT, ODCID, now=1000.0)
    with pytest.raises(RetryTokenError):
        minter.validate(token, CLIENT_IP, CLIENT_PORT, now=990.0)


def test_token_tamper_detected(minter):
    token = bytearray(minter.mint(CLIENT_IP, CLIENT_PORT, ODCID, now=1000.0))
    token[-1] ^= 0x01
    with pytest.raises(RetryTokenError):
        minter.validate(bytes(token), CLIENT_IP, CLIENT_PORT, now=1001.0)


def test_token_wrong_minter_rejected(minter):
    other = RetryTokenMinter(secret=b"\x43" * 32)
    token = minter.mint(CLIENT_IP, CLIENT_PORT, ODCID, now=1000.0)
    with pytest.raises(RetryTokenError):
        other.validate(token, CLIENT_IP, CLIENT_PORT, now=1001.0)


def test_short_token_rejected(minter):
    with pytest.raises(RetryTokenError):
        minter.validate(b"\x00" * 4, CLIENT_IP, CLIENT_PORT, now=0.0)


def test_length_mismatch_rejected(minter):
    token = minter.mint(CLIENT_IP, CLIENT_PORT, ODCID, now=1000.0)
    with pytest.raises(RetryTokenError):
        minter.validate(token + b"\x00", CLIENT_IP, CLIENT_PORT, now=1001.0)


def test_retry_packet_build_and_verify(minter):
    token = minter.mint(CLIENT_IP, CLIENT_PORT, ODCID, now=0.0)
    wire = build_retry_packet(
        version=QUIC_V1.value, dcid=b"\x01" * 8, scid=b"\x02" * 8, odcid=ODCID, token=token
    )
    view = parse_header(wire)
    assert isinstance(view, RetryPacket)
    assert verify_retry_packet(view, ODCID)


def test_retry_tag_bound_to_odcid():
    wire = build_retry_packet(
        version=QUIC_V1.value, dcid=b"\x01" * 8, scid=b"\x02" * 8, odcid=ODCID, token=b"t"
    )
    view = parse_header(wire)
    assert not verify_retry_packet(view, b"\xbb" * 8)


def test_retry_tag_bound_to_contents():
    wire = bytearray(
        build_retry_packet(
            version=QUIC_V1.value, dcid=b"\x01" * 8, scid=b"\x02" * 8, odcid=ODCID, token=b"t"
        )
    )
    wire[10] ^= 0xFF  # corrupt a CID byte
    view = parse_header(bytes(wire))
    assert not verify_retry_packet(view, ODCID)


def test_integrity_tag_deterministic():
    tag1 = retry_integrity_tag(QUIC_V1.value, ODCID, b"retry-body")
    tag2 = retry_integrity_tag(QUIC_V1.value, ODCID, b"retry-body")
    assert tag1 == tag2 and len(tag1) == 16
    assert retry_integrity_tag(QUIC_V1.value, ODCID, b"other") != tag1
