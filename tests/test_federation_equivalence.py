"""Federation partition equivalence: K telescopes == one telescope.

The acceptance pin of :mod:`repro.federate`: K vantages tiling the /9
by destination prefix, each running the full per-packet phase locally
and shipping state over the file-spool transport, must merge into a
:class:`PipelineResult` — and a rendered report — **byte-identical**
to a single telescope analyzing the whole prefix.  Exact and sketch
vantage modes both pin (sketch vantages ship exact state alongside
the tier).  Damage to interim spool frames must be counted, skipped,
and must not perturb the merged result.
"""

import dataclasses

import pytest

from repro.core import QuicsandPipeline
from repro.core.pipeline import AnalysisConfig
from repro.core.report import build_report
from repro.core.sessions import TimeoutSweep
from repro.faults import corrupt_frame_bytes
from repro.federate import (
    Aggregator,
    SpoolWriter,
    Vantage,
    VantageConfig,
    merge_federated_states,
    tile_prefixes,
)
from repro.federate.protocol import BYE, FINAL_STATE, HELLO, SKETCH
from repro.net.addresses import IPv4Network
from repro.telescope import Scenario, ScenarioConfig
from repro.util.rng import SeededRng
from repro.util.timeutil import HOUR

SCENARIO_KW = dict(seed=11, duration=HOUR, research_sample=1 / 2048)

#: helper objects compared by identity in PipelineResult (same set as
#: tests/test_lane_equivalence.py)
_IDENTITY_FIELDS = {"config", "timeout_sweep", "quic_detector", "common_detector"}


def scenario():
    return Scenario(ScenarioConfig(**SCENARIO_KW))


def make_pipeline(s):
    return QuicsandPipeline(
        registry=s.internet.registry,
        census=s.internet.census,
        greynoise=s.internet.greynoise,
        config=AnalysisConfig(),
    )


@pytest.fixture(scope="module")
def shared_packets():
    """The full-prefix capture, generated once and fanned out."""
    return list(scenario().packets())


@pytest.fixture(scope="module")
def baseline(shared_packets):
    s = scenario()
    result = make_pipeline(s).process(iter(shared_packets))
    report = build_report(result, research_weight=s.truth.research_weight)
    return result, report


def run_federation(spool_dir, shared_packets, vantages, mode):
    """Spool K vantage streams and aggregate them."""
    tiles = tile_prefixes("44.0.0.0/9", vantages)
    for index, tile in enumerate(tiles):
        vantage = Vantage(
            VantageConfig(
                name=f"v{index}",
                prefix=str(tile),
                mode=mode,
                snapshot_every=1800.0,
                scenario=ScenarioConfig(**SCENARIO_KW),
                analysis=AnalysisConfig(),
            )
        )
        with SpoolWriter(str(spool_dir), f"v{index}") as writer:
            vantage.run(writer, packets=shared_packets)
    s = scenario()
    aggregator = Aggregator(
        make_pipeline(s), research_weight=s.truth.research_weight
    )
    aggregator.consume_spool(str(spool_dir))
    return aggregator, aggregator.federate(), s


def assert_identical(reference, other, weight, label):
    for field in dataclasses.fields(reference):
        if field.name in _IDENTITY_FIELDS:
            continue
        assert getattr(reference, field.name) == getattr(
            other, field.name
        ), (label, field.name)
    assert reference.timeout_sweep.sweep(range(1, 61)) == other.timeout_sweep.sweep(
        range(1, 61)
    ), label
    assert build_report(reference, research_weight=weight) == build_report(
        other, research_weight=weight
    ), label


@pytest.mark.parametrize("vantages", [1, 2, 3, 4])
def test_partition_equivalence_exact(tmp_path, shared_packets, baseline, vantages):
    """K exact vantages over the spool reproduce the single telescope."""
    reference, reference_report = baseline
    _agg, fed, s = run_federation(tmp_path, shared_packets, vantages, "exact")
    assert_identical(
        reference, fed.global_result, s.truth.research_weight, f"exact-k{vantages}"
    )
    assert (
        build_report(fed.global_result, research_weight=s.truth.research_weight)
        == reference_report
    )


@pytest.mark.parametrize("vantages", [1, 3])
def test_partition_equivalence_sketch(tmp_path, shared_packets, baseline, vantages):
    """Sketch vantages ship exact state too: global result still pins."""
    reference, reference_report = baseline
    _agg, fed, s = run_federation(tmp_path, shared_packets, vantages, "sketch")
    assert_identical(
        reference, fed.global_result, s.truth.research_weight, f"sketch-k{vantages}"
    )
    assert (
        build_report(fed.global_result, research_weight=s.truth.research_weight)
        == reference_report
    )
    for stream in fed.streams:
        assert stream.mode == "sketch"
        assert stream.sketch is not None
        assert stream.sketch["tier"].packet_counts.width > 0


def test_cross_telescope_dedup(tmp_path, shared_packets, baseline):
    """The same flood seen from several tiles collapses to one."""
    _agg, fed, _s = run_federation(tmp_path, shared_packets, 2, "exact")
    assert fed.dedup_hits > 0
    sightings = sum(len(flood.vantages) for flood in fed.global_floods)
    assert sightings == len(fed.global_floods) + fed.dedup_hits
    multi = [f for f in fed.global_floods if len(f.vantages) > 1]
    assert multi, "at least one flood must be visible from both tiles"
    for flood in fed.global_floods:
        assert flood.start <= flood.end
        assert set(flood.vantages) <= {"v0", "v1"}


def test_corrupt_spool_frames_skipped_not_raised(tmp_path, shared_packets, baseline):
    """Fault-injected spool damage: counted, skipped, result unchanged.

    Interim ``state`` frames absorb all the damage (the load-bearing
    hello/final-state/sketch/bye frames are spared), so the federation
    must still produce the bit-exact global report while reporting a
    nonzero corrupt count.
    """
    reference, reference_report = baseline
    tiles = tile_prefixes("44.0.0.0/9", 2)
    for index, tile in enumerate(tiles):
        vantage = Vantage(
            VantageConfig(
                name=f"v{index}",
                prefix=str(tile),
                mode="exact",
                snapshot_every=600.0,  # many interim frames to damage
                scenario=ScenarioConfig(**SCENARIO_KW),
                analysis=AnalysisConfig(),
            )
        )
        with SpoolWriter(str(tmp_path), f"v{index}") as writer:
            vantage.run(writer, packets=shared_packets)
    damaged_total = 0
    for path in tmp_path.glob("*.qsf"):
        damaged, n = corrupt_frame_bytes(
            path.read_bytes(),
            SeededRng(5, path.name),
            rate=1.0,
            spare_kinds=(HELLO, FINAL_STATE, SKETCH, BYE),
        )
        path.write_bytes(damaged)
        damaged_total += n
    assert damaged_total > 0, "need interim frames to damage"
    s = scenario()
    aggregator = Aggregator(
        make_pipeline(s), research_weight=s.truth.research_weight
    )
    aggregator.consume_spool(str(tmp_path))
    fed = aggregator.federate()
    assert fed.corrupt_frames == damaged_total
    assert_identical(
        reference, fed.global_result, s.truth.research_weight, "corrupt-spool"
    )
    assert (
        build_report(fed.global_result, research_weight=s.truth.research_weight)
        == reference_report
    )
    report = aggregator.report(fed)
    assert f"corrupt frames skipped  {damaged_total}" in report


def test_extrapolation_check_rows(tmp_path, shared_packets, baseline):
    reference, _ = baseline
    _agg, fed, _s = run_federation(tmp_path, shared_packets, 2, "exact")
    assert set(fed.extrapolation) == {"v0", "v1"}
    for check in fed.extrapolation.values():
        assert check["share"] == 0.5
        assert check["estimate"] == check["packets"] * 2
    total = sum(c["packets"] for c in fed.extrapolation.values())
    assert total == reference.total_packets


# -- merge-layer unit pins -------------------------------------------------


def test_tile_prefixes_partition_exactly():
    base = IPv4Network.from_cidr("44.0.0.0/9")
    for count in (1, 2, 3, 4, 5, 8):
        tiles = tile_prefixes(base, count)
        assert len(tiles) == count
        assert sum(t.size for t in tiles) == base.size
        # address-ordered and disjoint: each tile starts where the
        # previous one ended
        cursor = base.network
        for tile in tiles:
            assert tile.network == cursor
            cursor += tile.size


def test_tile_prefixes_rejects_bad_counts():
    with pytest.raises(ValueError):
        tile_prefixes("44.0.0.0/9", 0)
    with pytest.raises(ValueError):
        tile_prefixes("44.0.0.0/31", 3)


def test_merge_rejects_plain_sweep_states():
    from repro.core.pipeline import PartialState

    config = AnalysisConfig()
    state = PartialState.initial(config)
    assert isinstance(state.sweep, TimeoutSweep)
    with pytest.raises(ValueError, match="RecordingSweep"):
        merge_federated_states([state], config)


def test_merge_rejects_empty_input():
    with pytest.raises(ValueError, match="no vantage states"):
        merge_federated_states([], AnalysisConfig())
