"""Interop-style handshake matrix.

The paper cites the QUIC Interop Runner's results that "the majority of
QUIC server and client implementations correctly support the RETRY
option".  In that spirit, this grid exercises every combination of

  deployed version x RETRY on/off x resumption on/off x keep-alives

through the real wire-format endpoints and asserts the handshake
completes with the expected round-trip count — the same matrix a
`quic-interop-runner` ``handshake``/``retry``/``resumption``/``zerortt``
test column covers.
"""

import pytest

from repro.util.rng import SeededRng
from repro.quic.connection import ClientConnection, ServerConnection
from repro.quic.resumption import SessionCache
from repro.quic.versions import DRAFT_27, DRAFT_29, MVFST_27, QUIC_V1

VERSIONS = (QUIC_V1, DRAFT_29, DRAFT_27, MVFST_27)


def ferry(client, server, ip=0x0B000001, port=7000):
    pending = [client.initial_datagram()]
    for _ in range(10):
        if not pending:
            break
        nxt = []
        for datagram in pending:
            for response in server.handle_datagram(datagram, ip, port, now=50.0):
                for reply in client.handle_datagram(response.data):
                    nxt.append(reply.data)
        pending = nxt
    return client.result()


@pytest.mark.parametrize("version", VERSIONS, ids=lambda v: v.name)
@pytest.mark.parametrize("retry", [False, True], ids=["noretry", "retry"])
@pytest.mark.parametrize("keepalives", [0, 2], ids=["nokeepalive", "keepalive"])
def test_handshake_matrix(version, retry, keepalives):
    rng = SeededRng(hash((version.value, retry, keepalives)) & 0xFFFFFFFF)
    server = ServerConnection(
        rng.child("server"),
        supported_versions=(version,),
        retry_enabled=retry,
        keepalive_pings=keepalives,
    )
    client = ClientConnection(
        rng.child("client"), version=version, supported_versions=(version,)
    )
    result = ferry(client, server)
    assert result.completed, f"{version.name} retry={retry} failed"
    assert result.version is version
    expected_rts = 2 if retry else 1
    assert result.round_trips == expected_rts
    assert result.retries_seen == (1 if retry else 0)


@pytest.mark.parametrize("version", VERSIONS, ids=lambda v: v.name)
@pytest.mark.parametrize("retry", [False, True], ids=["noretry", "retry"])
def test_resumption_matrix(version, retry):
    rng = SeededRng(hash(("resume", version.value, retry)) & 0xFFFFFFFF)
    cache = SessionCache()
    server = ServerConnection(
        rng.child("server"), supported_versions=(version,), retry_enabled=retry
    )
    first = ClientConnection(
        rng.child("first"),
        version=version,
        supported_versions=(version,),
        server_name="m.example",
        session_cache=cache,
    )
    assert ferry(first, server).completed
    state = cache.lookup("m.example")
    assert state is not None and state.version is version

    second = ClientConnection(
        rng.child("second"),
        server_name="m.example",
        supported_versions=(version,),
        resumption=state,
        early_data=b"0rtt-request",
    )
    result = ferry(second, server)
    assert result.completed
    assert result.used_0rtt
    assert result.round_trips == 1  # resumption always skips the retry RT
    assert server.stats["zero_rtt_accepted"] == 1


@pytest.mark.parametrize(
    "client_versions,server_versions,expected",
    [
        ((DRAFT_29, QUIC_V1), (QUIC_V1,), QUIC_V1),
        ((MVFST_27, DRAFT_29), (DRAFT_29, QUIC_V1), DRAFT_29),
        ((DRAFT_27, DRAFT_29, QUIC_V1), (DRAFT_27,), DRAFT_27),
    ],
    ids=["d29->v1", "mvfst->d29", "d27-direct"],
)
def test_version_negotiation_matrix(client_versions, server_versions, expected):
    rng = SeededRng(hash((tuple(v.value for v in client_versions), expected.value)) & 0xFFFFFFFF)
    server = ServerConnection(rng.child("server"), supported_versions=server_versions)
    client = ClientConnection(
        rng.child("client"),
        version=client_versions[0],
        supported_versions=client_versions,
    )
    result = ferry(client, server)
    assert result.completed
    assert result.version is expected


@pytest.mark.parametrize("version", VERSIONS, ids=lambda v: v.name)
def test_http3_matrix(version):
    rng = SeededRng(hash(("h3", version.value)) & 0xFFFFFFFF)
    server = ServerConnection(
        rng.child("server"),
        supported_versions=(version,),
        pages={"/": b"interop"},
    )
    client = ClientConnection(
        rng.child("client"), version=version, supported_versions=(version,)
    )
    assert ferry(client, server).completed
    request = client.request_datagram("/")
    for response in server.handle_datagram(request, 0x0B000001, 7000, now=51.0):
        client.handle_datagram(response.data)
    assert client.http_responses
    assert client.http_responses[0].status == 200
    assert client.http_responses[0].body == b"interop"
