"""Tests for the CLI and the full-text report."""

import io

import pytest

from repro.cli import main
from repro.core import QuicsandPipeline
from repro.core.report import build_report
from repro.telescope import Scenario, ScenarioConfig
from repro.util.timeutil import HOUR

FAST = ["--hours", "0.5", "--research-sample", "0.0005", "--seed", "11"]


def run_cli(argv):
    stream = io.StringIO()
    code = main(argv, stream=stream)
    return code, stream.getvalue()


@pytest.fixture(scope="module")
def small_result():
    scenario = Scenario(ScenarioConfig(seed=11, duration=2 * HOUR, research_sample=1 / 2048))
    pipeline = QuicsandPipeline(
        registry=scenario.internet.registry,
        census=scenario.internet.census,
        greynoise=scenario.internet.greynoise,
    )
    return scenario, pipeline.process(scenario.packets())


# -- report ------------------------------------------------------------


def test_report_contains_all_sections(small_result):
    scenario, result = small_result
    text = build_report(result, research_weight=scenario.truth.research_weight)
    for marker in (
        "Overview (Figure 2)",
        "Traffic types (Figure 3)",
        "Session timeout sweep (Figure 4)",
        "Source network types (Figure 5)",
        "DoS floods (Figures 6, 7)",
        "Multi-vector attacks (Figures 8, 12, 13)",
        "Attack pattern validity (Section 6)",
        "RETRY audit (Section 6)",
    ):
        assert marker in text, f"missing section {marker!r}"


def test_report_mentions_paper_baselines(small_result):
    scenario, result = small_result
    text = build_report(result)
    assert "paper: 98.5%" in text
    assert "paper: 255 s" in text
    assert "paper: 51%" in text


def test_report_without_attacks():
    scenario = Scenario(
        ScenarioConfig(seed=1, duration=0.2 * HOUR, research_sample=1 / 4096, include_attacks=False)
    )
    pipeline = QuicsandPipeline(registry=scenario.internet.registry)
    result = pipeline.process(scenario.packets())
    text = build_report(result)
    assert "No QUIC flood attacks detected." in text


# -- cli ------------------------------------------------------------


def test_cli_report_command():
    code, out = run_cli(["report"] + FAST)
    assert code == 0
    assert "Overview (Figure 2)" in out
    assert "RETRY" in out


def test_cli_report_writes_file(tmp_path):
    out_file = tmp_path / "report.txt"
    code, _out = run_cli(["report"] + FAST + ["--report-out", str(out_file)])
    assert code == 0
    assert "Overview (Figure 2)" in out_file.read_text()


def test_cli_simulate_then_analyze(tmp_path):
    pcap = tmp_path / "capture.pcap"
    code, out = run_cli(["simulate"] + FAST + ["--out", str(pcap)])
    assert code == 0
    assert pcap.stat().st_size > 1000
    assert "wrote" in out

    code, out = run_cli(["analyze", str(pcap)] + FAST)
    assert code == 0
    assert "Overview (Figure 2)" in out


def test_cli_analyze_without_correlation(tmp_path):
    pcap = tmp_path / "capture.pcap"
    run_cli(["simulate"] + FAST + ["--out", str(pcap)])
    code, out = run_cli(["analyze", str(pcap), "--no-correlation"] + FAST)
    assert code == 0
    assert "Overview" in out


def test_cli_table1():
    code, out = run_cli(["table1"])
    assert code == 0
    assert "Table 1" in out
    assert "auto=128" in out
    assert out.count("100%") >= 4


def test_cli_probe():
    code, out = run_cli(["probe"] + FAST + ["--count", "3"])
    assert code == 0
    assert "Active RETRY probes" in out
    assert out.count("yes") >= 3  # handshakes complete
    lines = [l for l in out.splitlines() if l and l[0].isdigit()]
    assert len(lines) == 3


def test_cli_requires_command():
    # usage errors come back as exit code 2, never as an exception
    code, _out = run_cli([])
    assert code == 2


def test_cli_unknown_command():
    code, _out = run_cli(["frobnicate"])
    assert code == 2


def test_cli_bad_flag_value():
    code, _out = run_cli(["report", "--hours", "not-a-number"])
    assert code == 2


def test_cli_version(capsys):
    import repro

    code, _out = run_cli(["--version"])
    assert code == 0
    captured = capsys.readouterr()  # argparse prints to sys.stdout
    assert captured.out.strip() == f"repro {repro.__version__}"


def test_cli_report_with_export(tmp_path):
    export_dir = tmp_path / "data"
    code, out = run_cli(["report"] + FAST + ["--export", str(export_dir)])
    assert code == 0
    assert "exported" in out
    assert (export_dir / "summary.json").exists()
    assert (export_dir / "fig7_attacks.csv").exists()
