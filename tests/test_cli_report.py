"""Tests for the CLI and the full-text report."""

import io

import pytest

from repro.cli import main
from repro.core import QuicsandPipeline
from repro.core.report import build_report
from repro.telescope import Scenario, ScenarioConfig
from repro.util.timeutil import HOUR

FAST = ["--hours", "0.5", "--research-sample", "0.0005", "--seed", "11"]


def run_cli(argv):
    stream = io.StringIO()
    code = main(argv, stream=stream)
    return code, stream.getvalue()


@pytest.fixture(scope="module")
def small_result():
    scenario = Scenario(ScenarioConfig(seed=11, duration=2 * HOUR, research_sample=1 / 2048))
    pipeline = QuicsandPipeline(
        registry=scenario.internet.registry,
        census=scenario.internet.census,
        greynoise=scenario.internet.greynoise,
    )
    return scenario, pipeline.process(scenario.packets())


# -- report ------------------------------------------------------------


def test_report_contains_all_sections(small_result):
    scenario, result = small_result
    text = build_report(result, research_weight=scenario.truth.research_weight)
    for marker in (
        "Overview (Figure 2)",
        "Traffic types (Figure 3)",
        "Session timeout sweep (Figure 4)",
        "Source network types (Figure 5)",
        "DoS floods (Figures 6, 7)",
        "Multi-vector attacks (Figures 8, 12, 13)",
        "Attack pattern validity (Section 6)",
        "RETRY audit (Section 6)",
    ):
        assert marker in text, f"missing section {marker!r}"


def test_report_mentions_paper_baselines(small_result):
    scenario, result = small_result
    text = build_report(result)
    assert "paper: 98.5%" in text
    assert "paper: 255 s" in text
    assert "paper: 51%" in text


def test_report_without_attacks():
    scenario = Scenario(
        ScenarioConfig(seed=1, duration=0.2 * HOUR, research_sample=1 / 4096, include_attacks=False)
    )
    pipeline = QuicsandPipeline(registry=scenario.internet.registry)
    result = pipeline.process(scenario.packets())
    text = build_report(result)
    assert "No QUIC flood attacks detected." in text


# -- cli ------------------------------------------------------------


def test_cli_report_command():
    code, out = run_cli(["report"] + FAST)
    assert code == 0
    assert "Overview (Figure 2)" in out
    assert "RETRY" in out


def test_cli_report_writes_file(tmp_path):
    out_file = tmp_path / "report.txt"
    code, _out = run_cli(["report"] + FAST + ["--report-out", str(out_file)])
    assert code == 0
    assert "Overview (Figure 2)" in out_file.read_text()


def test_cli_simulate_then_analyze(tmp_path):
    pcap = tmp_path / "capture.pcap"
    code, out = run_cli(["simulate"] + FAST + ["--out", str(pcap)])
    assert code == 0
    assert pcap.stat().st_size > 1000
    assert "wrote" in out

    code, out = run_cli(["analyze", str(pcap)] + FAST)
    assert code == 0
    assert "Overview (Figure 2)" in out


def test_cli_analyze_without_correlation(tmp_path):
    pcap = tmp_path / "capture.pcap"
    run_cli(["simulate"] + FAST + ["--out", str(pcap)])
    code, out = run_cli(["analyze", str(pcap), "--no-correlation"] + FAST)
    assert code == 0
    assert "Overview" in out


def test_cli_table1():
    code, out = run_cli(["table1"])
    assert code == 0
    assert "Table 1" in out
    assert "auto=128" in out
    assert out.count("100%") >= 4


def test_cli_probe():
    code, out = run_cli(["probe"] + FAST + ["--count", "3"])
    assert code == 0
    assert "Active RETRY probes" in out
    assert out.count("yes") >= 3  # handshakes complete
    lines = [l for l in out.splitlines() if l and l[0].isdigit()]
    assert len(lines) == 3


def test_cli_requires_command():
    # usage errors come back as exit code 2, never as an exception
    code, _out = run_cli([])
    assert code == 2


def test_cli_unknown_command():
    code, _out = run_cli(["frobnicate"])
    assert code == 2


def test_cli_bad_flag_value():
    code, _out = run_cli(["report", "--hours", "not-a-number"])
    assert code == 2


def test_cli_version(capsys):
    import repro

    code, _out = run_cli(["--version"])
    assert code == 0
    captured = capsys.readouterr()  # argparse prints to sys.stdout
    assert captured.out.strip() == f"repro {repro.__version__}"


def test_cli_report_named_scenario_matches_golden():
    """``report --scenario`` renders the registry preset — byte-equal
    to the golden snapshot the test suite pins for that scenario."""
    import pathlib

    code, out = run_cli(["report", "--scenario", "adv-vn-retry"])
    assert code == 0
    golden = (
        pathlib.Path(__file__).parent / "data" / "scenario_adv-vn-retry.txt"
    ).read_text()
    assert out == golden + "\n"


def test_cli_scenario_accepts_explicit_overrides():
    """Explicit --hours/--seed win over the preset; defaults do not
    clobber the preset's own window."""
    from repro.cli import _scenario_config
    from repro.telescope.presets import scenario_config

    code, out = run_cli(
        ["report", "--scenario", "adv-h3-flood", "--hours", "0.1", "--seed", "7"]
    )
    assert code == 0
    assert "Overview (Figure 2)" in out

    import argparse

    preset = scenario_config("adv-h3-flood")
    args = argparse.Namespace(
        scenario="adv-h3-flood",
        seed=20210401,
        hours=6.0,
        research_sample=1 / 256,
    )
    assert _scenario_config(args) == preset  # defaults leave the preset alone
    args.hours = 0.1
    args.seed = 7
    overridden = _scenario_config(args)
    assert overridden.seed == 7
    assert overridden.duration == pytest.approx(0.1 * HOUR)
    assert overridden.include_attacks == preset.include_attacks


def test_cli_unknown_scenario_is_usage_error():
    code, _out = run_cli(["report", "--scenario", "no-such-scenario"])
    assert code == 2


def test_cli_report_with_export(tmp_path):
    export_dir = tmp_path / "data"
    code, out = run_cli(["report"] + FAST + ["--export", str(export_dir)])
    assert code == 0
    assert "exported" in out
    assert (export_dir / "summary.json").exists()
    assert (export_dir / "fig7_attacks.csv").exists()


# -- metrics export and the stats subcommand ---------------------------


@pytest.fixture
def obs_restored():
    """--metrics-out enables the process-wide registry; undo after."""
    from repro import obs

    was = obs.enabled()
    obs.REGISTRY.reset()
    yield
    obs.REGISTRY.reset()
    obs.set_enabled(was)


def test_cli_analyze_metrics_out(tmp_path, obs_restored):
    import json

    pcap = tmp_path / "t.pcap"
    code, _ = run_cli(["simulate"] + FAST + ["--out", str(pcap)])
    assert code == 0

    metrics = tmp_path / "run.json"
    code, out = run_cli(
        ["analyze", str(pcap)] + FAST + ["--metrics-out", str(metrics)]
    )
    assert code == 0
    assert "metrics written to" in out

    prom = tmp_path / "run.prom"
    assert metrics.exists() and prom.exists()

    # the JSON side parses and carries pipeline counters
    data = json.loads(metrics.read_text())
    by_name = {m["name"]: m for m in data["metrics"]}
    packets = by_name["repro_pipeline_packets_total"]["samples"][0]["value"]
    assert packets > 0

    # the Prometheus side is well-formed text exposition
    text = prom.read_text()
    assert "# TYPE repro_pipeline_packets_total counter\n" in text
    assert f"repro_pipeline_packets_total {packets}\n" in text
    for line in text.splitlines():
        assert line.startswith("#") or line == "" or " " in line

    # stats renders the file into the human summary
    code, out = run_cli(["stats", str(metrics)])
    assert code == 0
    assert "repro metrics summary" in out
    assert "repro_pipeline_packets_total" in out


def test_cli_stats_bad_file(tmp_path):
    code, out = run_cli(["stats", str(tmp_path / "missing.json")])
    assert code == 2
    bad = tmp_path / "bad.json"
    bad.write_text("not json")
    code, out = run_cli(["stats", str(bad)])
    assert code == 2
