"""Equivalence contract of the wire-template synthesis caches.

The template caches (:class:`DatagramTemplateCache`, the keystream
memo) only replay bytes whose inputs are fully captured by the cache
key, so a seeded scenario must produce *byte-identical* packet streams
— and bit-identical analysis results — with the caches enabled or
disabled via ``REPRO_DISABLE_TEMPLATE_CACHE=1``.  These tests pin that
contract; any cache key that misses a byte-determining input shows up
here as a diff.
"""

import pytest

from repro.core import QuicsandPipeline
from repro.core.report import build_report
from repro.telescope import Scenario, ScenarioConfig
from repro.telescope.backscatter import (
    DatagramTemplateCache,
    QuicVictimResponder,
    ResponderPolicy,
)
from repro.util.caching import DISABLE_TEMPLATE_CACHE_ENV, template_cache_enabled
from repro.util.rng import SeededRng
from repro.util.timeutil import HOUR


def _scenario():
    return Scenario(
        ScenarioConfig(seed=11, duration=1 * HOUR, research_sample=1 / 2048)
    )


def _capture(scenario):
    return [(p.timestamp, p.to_bytes()) for p in scenario.packets()]


def _analyze(scenario):
    pipeline = QuicsandPipeline(
        registry=scenario.internet.registry,
        census=scenario.internet.census,
        greynoise=scenario.internet.greynoise,
    )
    return pipeline.process(scenario.packets())


# -- cache gate --------------------------------------------------------


def test_cache_enabled_by_default(monkeypatch):
    monkeypatch.delenv(DISABLE_TEMPLATE_CACHE_ENV, raising=False)
    assert template_cache_enabled()
    monkeypatch.setenv(DISABLE_TEMPLATE_CACHE_ENV, "1")
    assert not template_cache_enabled()


# -- DatagramTemplateCache unit behaviour ------------------------------


def test_template_cache_hit_miss_accounting():
    cache = DatagramTemplateCache()
    calls = []

    def build():
        calls.append(1)
        return b"wire-bytes"

    assert cache.get(("k",), build) == b"wire-bytes"
    assert cache.get(("k",), build) == b"wire-bytes"
    assert len(calls) == 1
    assert cache.misses == 1
    assert cache.hits == 1
    assert len(cache) == 1


def test_template_cache_disabled_always_rebuilds(monkeypatch):
    monkeypatch.setenv(DISABLE_TEMPLATE_CACHE_ENV, "1")
    cache = DatagramTemplateCache()
    calls = []

    def build():
        calls.append(1)
        return b"wire-bytes"

    assert cache.get(("k",), build) == b"wire-bytes"
    assert cache.get(("k",), build) == b"wire-bytes"
    assert len(calls) == 2
    assert cache.hits == 0
    assert len(cache) == 0


def test_template_cache_bounded():
    cache = DatagramTemplateCache(max_entries=4)
    for i in range(10):
        cache.get(("k", i), lambda i=i: bytes([i]))
    assert len(cache) <= 4
    # evicted entries rebuild with identical bytes
    assert cache.get(("k", 0), lambda: bytes([0])) == b"\x00"


# -- responder equivalence ---------------------------------------------


def _respond_train(monkeypatch, disabled: bool):
    if disabled:
        monkeypatch.setenv(DISABLE_TEMPLATE_CACHE_ENV, "1")
    else:
        monkeypatch.delenv(DISABLE_TEMPLATE_CACHE_ENV, raising=False)
    responder = QuicVictimResponder(
        victim_ip=0x08080808,
        rng=SeededRng(42),
        policy=ResponderPolicy(
            scid_policy="source", keepalive_pings=2, attacker_dcid_pool=2
        ),
        templates=DatagramTemplateCache(),
    )
    packets = []
    for i in range(8):
        packets += responder.respond(float(i), 0x0A000001, 4000 + i)
    return responder, [(p.timestamp, p.to_bytes()) for p in packets]

def test_responder_bytes_identical_cache_on_vs_off(monkeypatch):
    responder_on, train_on = _respond_train(monkeypatch, disabled=False)
    responder_off, train_off = _respond_train(monkeypatch, disabled=True)
    assert train_on == train_off
    # under a "source" SCID policy the per-(dcid, scid) templates repeat
    assert responder_on.templates.hits > 0
    assert responder_off.templates.hits == 0


# -- scenario-level equivalence ----------------------------------------


def test_scenario_stream_bytes_identical_cache_on_vs_off(monkeypatch):
    monkeypatch.delenv(DISABLE_TEMPLATE_CACHE_ENV, raising=False)
    enabled = _capture(_scenario())
    monkeypatch.setenv(DISABLE_TEMPLATE_CACHE_ENV, "1")
    disabled = _capture(_scenario())
    assert len(enabled) == len(disabled)
    assert enabled == disabled


def test_pipeline_result_identical_cache_on_vs_off(monkeypatch):
    monkeypatch.delenv(DISABLE_TEMPLATE_CACHE_ENV, raising=False)
    scenario = _scenario()
    result_on = _analyze(scenario)
    report_on = build_report(
        result_on, research_weight=scenario.truth.research_weight
    )
    monkeypatch.setenv(DISABLE_TEMPLATE_CACHE_ENV, "1")
    scenario = _scenario()
    result_off = _analyze(scenario)
    report_off = build_report(
        result_off, research_weight=scenario.truth.research_weight
    )
    assert result_on.total_packets == result_off.total_packets
    assert result_on.class_counts == result_off.class_counts
    assert result_on.hourly_requests == result_off.hourly_requests
    assert result_on.hourly_responses == result_off.hourly_responses
    assert report_on == report_off
