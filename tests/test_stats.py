"""Tests for percentiles, summaries and empirical CDFs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import EmpiricalCdf, median, percentile, summarize


def test_percentile_interpolates():
    assert percentile([1, 2, 3, 4], 50) == 2.5
    assert percentile([1, 2, 3, 4], 0) == 1
    assert percentile([1, 2, 3, 4], 100) == 4


def test_percentile_single_value():
    assert percentile([42], 73) == 42.0


def test_percentile_rejects_bad_input():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1], 101)


def test_median_odd():
    assert median([5, 1, 9]) == 5


def test_summarize_fields():
    s = summarize([4, 1, 3, 2])
    assert s.count == 4
    assert s.minimum == 1
    assert s.maximum == 4
    assert s.mean == 2.5
    assert s.median == 2.5


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])


def test_cdf_fraction_at_most():
    cdf = EmpiricalCdf([1, 1, 2, 4])
    assert cdf.fraction_at_most(0) == 0.0
    assert cdf.fraction_at_most(1) == 0.5
    assert cdf.fraction_at_most(2) == 0.75
    assert cdf.fraction_at_most(4) == 1.0
    assert cdf.fraction_at_most(100) == 1.0


def test_cdf_quantile():
    cdf = EmpiricalCdf([1, 1, 2, 4])
    assert cdf.quantile(0.5) == 1
    assert cdf.quantile(0.75) == 2
    assert cdf.quantile(1.0) == 4


def test_cdf_quantile_bounds():
    cdf = EmpiricalCdf([1])
    with pytest.raises(ValueError):
        cdf.quantile(0.0)
    with pytest.raises(ValueError):
        cdf.quantile(1.5)


def test_cdf_steps_thinning():
    cdf = EmpiricalCdf(range(1000))
    steps = cdf.steps(max_points=50)
    assert len(steps) <= 51
    assert steps[-1] == (999.0, 1.0)


@given(st.lists(st.floats(min_value=-1e9, max_value=1e9), min_size=1, max_size=200))
def test_cdf_is_monotone_and_ends_at_one(values):
    cdf = EmpiricalCdf(values)
    fractions = [f for _v, f in cdf.steps()]
    assert all(b >= a for a, b in zip(fractions, fractions[1:]))
    assert fractions[-1] == 1.0


@given(
    st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100),
    st.floats(min_value=0.01, max_value=1.0),
)
def test_quantile_consistent_with_fraction(values, q):
    cdf = EmpiricalCdf(values)
    v = cdf.quantile(q)
    assert cdf.fraction_at_most(v) >= q - 1e-9
