"""docs/METRICS.md is a contract, not prose.

Importing every instrumented module registers the full metric catalog
on the process-wide registry; this test parses the reference tables in
``docs/METRICS.md`` and asserts both directions of sync — every live
family is documented and every documented family is live, with
matching types and label names.
"""

import importlib
import pathlib
import re

DOCS = pathlib.Path(__file__).resolve().parent.parent / "docs" / "METRICS.md"

#: importing these modules registers every metric family there is.
INSTRUMENTED_MODULES = (
    "repro.core.pipeline",
    "repro.core.parallel",
    "repro.stream.analyzer",
    "repro.stream.feeds",
    "repro.stream.sketch.tier",
    "repro.telescope.telescope",
    "repro.telescope.genlane",
    "repro.telescope.backscatter",
    "repro.telescope.scanners",
    "repro.quic.crypto",
    "repro.faults.inject",
    "repro.federate.protocol",
    "repro.federate.aggregate",
)

ROW = re.compile(
    r"^\|\s*`(?P<name>repro_[a-z0-9_]+)`\s*"
    r"\|\s*(?P<type>counter|gauge|histogram)\s*"
    r"\|\s*(?P<labels>[^|]+?)\s*\|"
)


def documented_metrics():
    rows = {}
    for line in DOCS.read_text().splitlines():
        match = ROW.match(line)
        if not match:
            continue
        labels = match.group("labels")
        names = tuple(re.findall(r"`([a-z0-9_]+)`", labels))
        assert match.group("name") not in rows, (
            f"{match.group('name')} documented twice"
        )
        rows[match.group("name")] = (match.group("type"), names)
    return rows


def live_metrics():
    for module in INSTRUMENTED_MODULES:
        importlib.import_module(module)
    from repro import obs

    return {
        m.name: (m.type, m.label_names) for m in obs.REGISTRY.families()
    }


def test_docs_and_registry_agree():
    documented = documented_metrics()
    live = live_metrics()

    assert documented, "no metric rows parsed from docs/METRICS.md"

    undocumented = sorted(set(live) - set(documented))
    stale = sorted(set(documented) - set(live))
    assert not undocumented, f"metrics missing from docs/METRICS.md: {undocumented}"
    assert not stale, f"docs/METRICS.md documents unknown metrics: {stale}"

    for name, (doc_type, doc_labels) in documented.items():
        live_type, live_labels = live[name]
        assert doc_type == live_type, (
            f"{name}: documented as {doc_type}, registered as {live_type}"
        )
        assert doc_labels == live_labels, (
            f"{name}: documented labels {doc_labels}, registered {live_labels}"
        )


def test_documented_label_values_exist():
    """The prose under the tables names label values — spot-check the
    load-bearing ones against the code's enums/constants."""
    text = DOCS.read_text()
    from repro.core.classify import PacketClass

    for klass in ("quic-request", "quic-response", "tcp-backscatter"):
        assert klass in {c.value for c in PacketClass}
        assert klass in text
    for cache in ("keystream", "response", "initial"):
        assert f"`{cache}`" in text
