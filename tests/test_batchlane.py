"""Fallback-boundary property suite for the columnar batch fast lane.

The contract under test: for *every* payload, routing through the fast
lane (:meth:`BatchLane.entry_for`) and through the rich dissector
(:func:`entry_from_dissection` over :meth:`QuicDissector.dissect`)
yields the same :data:`LaneEntry` — in particular the same
(classification, version, DCID, malformed-slug-or-``None``) tuple the
downstream pipeline consumes.  Inputs come from the checked-in fuzz
corpus (``tests/data/corpus/*.hex``), seeded random bytes, the fuzz
suite's structure-aware mutation generator, and real scenario traffic,
so both the trivially-rejected bulk and the deep parser paths cross the
boundary.
"""

import pathlib

import pytest

from repro import obs
from repro.core.batchlane import (
    E_DCID,
    E_REASON,
    E_VALID,
    E_VERSION,
    FALLBACK_REASONS,
    BatchLane,
    entry_from_dissection,
    fast_entry,
)
from repro.core.dissect import MalformedReason, QuicDissector
from repro.telescope import Scenario, ScenarioConfig
from repro.util.rng import SeededRng
from repro.util.timeutil import HOUR

from tests.test_fuzz_dissect import valid_datagrams

CORPUS = pathlib.Path(__file__).parent / "data" / "corpus"
REASON_SLUGS = {reason.value for reason in MalformedReason}


@pytest.fixture(scope="module")
def dissector():
    return QuicDissector()


def rich_entry(dissector, payload):
    return entry_from_dissection(dissector.dissect(payload))


def assert_same_entry(dissector, payload):
    """One payload through both paths must agree entry-for-entry."""
    lane_entry = BatchLane().entry_for(payload)
    reference = rich_entry(dissector, payload)
    assert lane_entry == reference, payload.hex()
    # the ISSUE's boundary tuple, spelled out: classification, version,
    # DCID, malformed-slug-or-None
    assert (
        lane_entry[E_VALID],
        lane_entry[E_VERSION],
        lane_entry[E_DCID],
        lane_entry[E_REASON],
    ) == (
        reference[E_VALID],
        reference[E_VERSION],
        reference[E_DCID],
        reference[E_REASON],
    ), payload.hex()
    if not lane_entry[E_VALID]:
        assert lane_entry[E_REASON] in REASON_SLUGS, payload.hex()
    return lane_entry


def corpus_payloads():
    payloads = []
    for path in sorted(CORPUS.glob("*.hex")):
        hex_text = "".join(
            line.strip()
            for line in path.read_text().splitlines()
            if line.strip() and not line.startswith("#")
        )
        payloads.append(bytes.fromhex(hex_text))
    return payloads


def test_corpus_boundary_agreement(dissector):
    payloads = corpus_payloads()
    assert payloads, "regression corpus is empty"
    for payload in payloads:
        assert_same_entry(dissector, payload)


def test_random_bytes_boundary_agreement(dissector):
    rng = SeededRng(0xBA7C4, "lane-random")
    for i in range(400):
        length = rng.randint(0, 64) if i % 3 else rng.randint(0, 1500)
        assert_same_entry(dissector, rng.randbytes(length))


def test_structure_aware_boundary_agreement(dissector):
    """Mutated valid datagrams reach the deep coalesced-walk branches
    (VN shapes, retry tags, token varints) random bytes rarely hit."""
    rng = SeededRng(0xBA7C5, "lane-mutate")
    seeds = valid_datagrams()
    for seed_payload in seeds:
        entry = assert_same_entry(dissector, seed_payload)
        assert entry[E_VALID], seed_payload.hex()
    for _ in range(400):
        data = bytearray(rng.choice(seeds))
        for _mutation in range(rng.randint(1, 4)):
            choice = rng.randint(0, 4)
            if choice == 0 and data:
                index = rng.randint(0, len(data) - 1)
                data[index] ^= 1 << rng.randint(0, 7)
            elif choice == 1 and data:
                data[rng.randint(0, len(data) - 1)] = rng.randint(0, 255)
            elif choice == 2 and len(data) > 1:
                del data[rng.randint(1, len(data) - 1) :]
            elif choice == 3:
                data.extend(rng.randbytes(rng.randint(1, 32)))
            else:
                other = rng.choice(seeds)
                cut = rng.randint(0, len(data))
                data = bytearray(bytes(data[:cut]) + other[cut:])
        assert_same_entry(dissector, bytes(data))


def test_scenario_traffic_boundary_agreement(dissector):
    """Every distinct UDP payload of a real scenario crosses the
    boundary identically — the mix the lane actually sees in steady
    state (scan templates, floods, backscatter, stray UDP)."""
    scenario = Scenario(ScenarioConfig(seed=23, duration=HOUR // 2))
    seen = set()
    for packet in scenario.packets():
        if packet.is_udp and packet.payload not in seen:
            seen.add(packet.payload)
            assert_same_entry(dissector, packet.payload)
    assert len(seen) > 100, "scenario produced too few distinct payloads"


def test_trivial_rejects_settle_fast():
    """The stray-UDP bulk (empty / first-byte rejects) never touches
    the rich dissector."""
    lane = BatchLane()
    assert lane.entry_for(b"")[E_REASON] == "empty"
    assert lane.entry_for(b"\x00" * 40)[E_REASON] == "no-fixed-bit"
    assert lane.fast_parses == 2
    assert lane.fallbacks == {}


def test_gquic_settles_fast(dissector):
    """Legacy gQUIC public headers are valid without any fallback."""
    payload = b"\x0d" + b"\x11" * 8 + b"Q043" + b"\x00" * 10
    lane = BatchLane()
    entry = lane.entry_for(payload)
    assert entry == rich_entry(dissector, payload)
    assert entry[E_VALID] and entry[E_VERSION] == int.from_bytes(b"Q043", "big")
    assert lane.fast_parses == 1 and lane.fallbacks == {}


def test_memo_counts_hits_and_misses():
    lane = BatchLane()
    payload = b"\x00" * 30
    lane.entry_for(payload)
    lane.entry_for(payload)
    lane.entry_for(payload)
    assert lane.cache_misses == 1
    assert lane.cache_hits == 2


def test_memo_two_generation_demotion():
    lane = BatchLane(cache_size=4)
    payloads = [bytes([i]) * 8 for i in range(10)]
    for payload in payloads:
        lane.entry_for(payload)
    assert lane.cache_misses == 10
    # survivors of the demotions still hit
    lane.entry_for(payloads[-1])
    assert lane.cache_hits == 1
    assert len(lane._cache) <= 4


def test_fast_plus_fallback_equals_misses(dissector):
    """Every memo miss is settled by exactly one of the two parsers."""
    rng = SeededRng(0xBA7C6, "lane-split")
    lane = BatchLane()
    for _ in range(200):
        lane.entry_for(rng.randbytes(rng.randint(0, 200)))
    for seed_payload in valid_datagrams():
        lane.entry_for(seed_payload)
    assert lane.fast_parses + sum(lane.fallbacks.values()) == lane.cache_misses
    assert set(lane.fallbacks) <= set(FALLBACK_REASONS)


def test_valid_initial_falls_back_for_frame_walk(dissector):
    """A well-formed client Initial needs the rich dissector (frame
    walk / decrypt live there) — and still lands on the same entry."""
    payload = valid_datagrams()[0]
    lane = BatchLane()
    entry = lane.entry_for(payload)
    assert entry[E_VALID]
    assert lane.fallbacks.get("parse", 0) + lane.fallbacks.get("error", 0) >= 0
    assert entry == rich_entry(dissector, payload)


def test_fast_entry_none_means_fallback_only():
    """fast_entry returning None is a routing decision, not a verdict:
    the lane must still produce a definitive entry via the dissector."""
    payload = b"\xc0\x00\x00\x00\x01\x15" + b"x" * 4  # bad CID length
    assert fast_entry(payload) is None
    lane = BatchLane()
    entry = lane.entry_for(payload)
    assert entry[E_VALID] is False
    assert entry[E_REASON] in REASON_SLUGS


def test_publish_lane_metrics_exports_families():
    obs.enable()
    try:
        obs.REGISTRY.reset()
        lane = BatchLane()
        lane.entry_for(b"")
        lane.entry_for(b"\xc0\x00\x00\x00\x01\x15" + b"x" * 4)
        lane.publish_lane_metrics()
        snapshot = obs.REGISTRY.snapshot()
        fast = snapshot["repro_batchlane_fast_total"]
        fallback = snapshot["repro_batchlane_fallback_total"]
        assert fast[0] == "counter" and fast[4] == {(): 1}
        assert fallback[2] == ("reason",)
        assert fallback[4] == {("parse",): 1}
    finally:
        obs.REGISTRY.reset()
        obs.set_enabled(False)
